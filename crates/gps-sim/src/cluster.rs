//! The simulated cluster: source → leaves → aggregators → root, in
//! virtual time.
//!
//! Topology is a two-level merge tree. One *source* host emits the edge
//! stream, routing each edge with the engine's real
//! [`EdgePartitioner`] to one of `S` *leaf*
//! nodes ([`LeafNode`], hosting the production shard runner). Leaves emit
//! epoch reports to `K` *aggregator* hosts (leaf `l` → aggregator
//! `l·K/S`, contiguous ranges), which store-and-forward them to the
//! *root*. The root keeps the freshest report per leaf and periodically
//! publishes a merged estimate over whoever has reported.
//!
//! ## Why aggregators forward instead of pre-merging
//!
//! f64 addition is not associative, so a tree that *summed* at the
//! aggregators would publish different bits than the flat
//! [`TriadEstimates::merged_colored`] merge — and "different bits" is
//! exactly what the determinism suites exist to forbid. Aggregators
//! therefore only batch and forward; all arithmetic happens once, at the
//! root, over per-leaf estimates in leaf order
//! ([`TriadEstimates::merged_colored_tree`]). Bit-identity of tree and
//! flat merges is then true by construction and pinned by tests at
//! `S ∈ {16, 64, 256}`.
//!
//! ## Determinism
//!
//! Everything is a pure function of the config, fault script, and edge
//! stream: virtual clock (no wall time anywhere), stable event ordering
//! ([`Scheduler`]), seeded network jitter, and the production code's own
//! seeded sampling. Same seed → same run, to the last f64 bit
//! ([`SimOutcome::fingerprint`]).

use crate::event::Scheduler;
use crate::net::Link;
use crate::node::{LeafNode, LeafReport};
use gps_core::weights::EdgeWeight;
use gps_core::TriadEstimates;
use gps_engine::{EdgePartitioner, ShardedGps};
use gps_graph::types::Edge;
use gps_graph::BackendKind;
use gps_telemetry::{
    EpochTrace, Event as TelemetryEvent, EventKind, Registry, Stability, TelemetrySnapshot,
    TraceCause,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Static cluster shape and timing model.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of leaf shard-nodes `S` (the scale-out axis; may far exceed
    /// physical cores — nodes are events, not threads).
    pub shards: usize,
    /// Number of aggregator hosts `K` (leaf `l` reports to `l·K/S`).
    pub aggregators: usize,
    /// Total reservoir budget `m`, split across leaves exactly like the
    /// engine splits it (`m/S`, first `m mod S` leaves get one more).
    pub capacity: usize,
    /// Engine seed: drives partitioner, per-shard samplers, restart seeds,
    /// and (xor-folded) the network jitter stream.
    pub seed: u64,
    /// Per-shard arrivals between epoch reports.
    pub epoch_every: u64,
    /// Per-shard arrivals between recovery checkpoints (0 = only the
    /// initial empty checkpoint).
    pub checkpoint_every: u64,
    /// Virtual time between consecutive source emissions.
    pub source_gap_ns: u64,
    /// Source→leaf and leaf→aggregator link model.
    pub leaf_link: Link,
    /// Aggregator→root link model.
    pub agg_link: Link,
    /// Root publish cadence in virtual time.
    pub publish_every_ns: u64,
    /// Adjacency backend for the production samplers.
    pub backend: BackendKind,
}

impl SimConfig {
    /// A config with sane timing defaults: 1 µs source gap, 50 µs ± 20 µs
    /// leaf links, 100 µs ± 40 µs aggregator links, 1 ms publishes,
    /// epoch every 256 arrivals, checkpoint every 128.
    pub fn new(shards: usize, aggregators: usize, capacity: usize, seed: u64) -> Self {
        SimConfig {
            shards,
            aggregators,
            capacity,
            seed,
            epoch_every: 256,
            checkpoint_every: 128,
            source_gap_ns: 1_000,
            leaf_link: Link {
                base_ns: 50_000,
                jitter_ns: 20_000,
            },
            agg_link: Link {
                base_ns: 100_000,
                jitter_ns: 40_000,
            },
            publish_every_ns: 1_000_000,
            backend: BackendKind::Compact,
        }
    }

    /// Aggregator owning leaf `l` (contiguous balanced ranges).
    pub fn aggregator_of(&self, leaf: usize) -> usize {
        leaf * self.aggregators / self.shards
    }
}

/// One scripted crash: the shard dies *consuming* its `at_arrival`-th
/// arrival (engine panic semantics) and is restored `restore_after_ns`
/// later in virtual time.
#[derive(Clone, Copy, Debug)]
struct CrashSite {
    shard: usize,
    at_arrival: u64,
    restore_after_ns: u64,
    fired: bool,
}

/// Deterministic fault script for one run.
#[derive(Clone, Debug, Default)]
pub struct SimFaults {
    crashes: Vec<CrashSite>,
    /// Extra one-way latency per leaf's links (stragglers).
    stragglers: Vec<(usize, u64)>,
}

impl SimFaults {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash `shard` while it consumes its `at_arrival`-th arrival;
    /// restore it `restore_after_ns` later. Fires once (on the first
    /// arrival ≥ the site, so a site inside a lost window still fires).
    pub fn crash_at(mut self, shard: usize, at_arrival: u64, restore_after_ns: u64) -> Self {
        self.crashes.push(CrashSite {
            shard,
            at_arrival,
            restore_after_ns,
            fired: false,
        });
        self
    }

    /// Adds `extra_ns` to every delivery to and from `shard` — a straggler
    /// whose reports arrive late (stale at the root) without any loss.
    pub fn straggler(mut self, shard: usize, extra_ns: u64) -> Self {
        self.stragglers.push((shard, extra_ns));
        self
    }
}

/// Per-publish statistics recorded at the root.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Virtual publish instant.
    pub at_ns: u64,
    /// Leaves whose reports were included.
    pub reporting: usize,
    /// Whether the publish extrapolated from a partial leaf set.
    pub degraded: bool,
    /// Oldest included report's age at publish time.
    pub staleness_max_ns: u64,
    /// Mean included report age at publish time.
    pub staleness_mean_ns: u64,
}

/// Everything a finished run pins down.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Final per-leaf estimates, in shard order.
    pub leaves: Vec<TriadEstimates>,
    /// Flat `merged_colored` over [`Self::leaves`] (loss-widened when any
    /// arrivals were lost, exactly like the engine's degraded estimates).
    pub flat: TriadEstimates,
    /// Two-level tree merge over the same leaves (same widening).
    pub tree: TriadEstimates,
    /// Edges the source pushed.
    pub pushed: u64,
    /// Arrivals lost to crashes (post-checkpoint windows).
    pub lost_arrivals: u64,
    /// Completed shard restarts.
    pub restarts: u64,
    /// Root publishes, in virtual-time order.
    pub epochs: Vec<EpochStats>,
    /// Virtual instant the last event finished.
    pub finished_at_ns: u64,
    /// Full telemetry of the run: counters, the virtual-time staleness
    /// histogram, and the structured event ring. The sim is single-threaded
    /// over a virtual clock, so — unlike the threaded engine's — this
    /// snapshot is deterministic *in its entirety* (events included) and is
    /// folded into [`SimOutcome::fingerprint`].
    pub telemetry: TelemetrySnapshot,
    /// Per-publish provenance traces, one per entry of [`Self::epochs`],
    /// stamped in virtual time with the sim's own stage names
    /// (`sim_report_spread`: oldest → newest included report;
    /// `sim_publish_wait`: newest report → publish instant). A partial
    /// publish carries [`TraceCause::Partial`]. Deterministic like the
    /// telemetry, and folded into [`SimOutcome::fingerprint`].
    pub traces: Vec<EpochTrace>,
}

impl SimOutcome {
    /// Publishes that extrapolated from a partial leaf set.
    pub fn degraded_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| e.degraded).count()
    }

    /// True when the tree merge reproduced the flat merge bit-for-bit.
    pub fn tree_matches_flat(&self) -> bool {
        bits(&self.tree) == bits(&self.flat)
    }

    /// A bit-exact digest of the run: every f64 of the flat and tree
    /// merges (as raw bits), plus the integer trajectory (pushed, losses,
    /// restarts, epoch count, finish time). Two runs with equal
    /// fingerprints produced identical estimates.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = bits(&self.flat);
        fp.extend(bits(&self.tree));
        for leaf in &self.leaves {
            fp.extend(bits(leaf));
        }
        fp.extend([
            self.pushed,
            self.lost_arrivals,
            self.restarts,
            self.epochs.len() as u64,
            self.finished_at_ns,
            // Digest of the full telemetry rendering — pins every counter,
            // histogram bucket, and ring event of the run.
            self.telemetry.fingerprint(),
        ]);
        // Every publish's full provenance trace (stage timings, skew,
        // cause, contributing mask), each as its own JSON digest.
        fp.extend(self.traces.iter().map(EpochTrace::fingerprint));
        fp
    }
}

fn bits(e: &TriadEstimates) -> Vec<u64> {
    vec![
        e.triangles.value.to_bits(),
        e.triangles.variance.to_bits(),
        e.wedges.value.to_bits(),
        e.wedges.variance.to_bits(),
        e.tri_wedge_cov.to_bits(),
    ]
}

/// Freshest root-side view of one leaf.
#[derive(Clone, Copy)]
struct Slot {
    estimates: TriadEstimates,
    arrivals: u64,
    generated_at_ns: u64,
}

enum Event {
    /// Source emits edge `i` of the stream.
    Emit(usize),
    /// A routed edge reaches its leaf.
    Deliver { shard: usize, edge: Edge },
    /// A leaf report reaches its aggregator.
    Report {
        report: LeafReport,
        generated_at_ns: u64,
    },
    /// An aggregator forwards a report to the root.
    Forward {
        report: LeafReport,
        generated_at_ns: u64,
    },
    /// Root publish tick.
    Publish,
    /// A crashed shard comes back.
    Restore { shard: usize },
}

/// Runs one simulated cluster over `edges` and returns the pinned
/// outcome. Pure function of its arguments — bit-reproducible.
pub fn run_cluster<W>(
    cfg: &SimConfig,
    faults: &SimFaults,
    weight_fn: W,
    edges: &[Edge],
) -> SimOutcome
where
    W: EdgeWeight + Clone + Send + 'static,
{
    assert!(cfg.shards > 0, "need at least one leaf");
    assert!(
        cfg.aggregators > 0 && cfg.aggregators <= cfg.shards,
        "need 1 ≤ K ≤ S aggregators"
    );

    let partitioner = EdgePartitioner::new(cfg.seed, cfg.shards);
    let mut leaves: Vec<LeafNode<W>> = (0..cfg.shards)
        .map(|s| {
            LeafNode::new(
                s,
                ShardedGps::<W>::shard_capacity(cfg.capacity, cfg.shards, s).max(1),
                cfg.seed,
                cfg.checkpoint_every,
                cfg.epoch_every,
                cfg.backend,
                weight_fn.clone(),
            )
        })
        .collect();
    // Decorrelated from the sampler seeds, same fold as the partitioner
    // uses for its mix — any constant works, it just must be fixed.
    let mut net_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_0F0F_CAFE_F00D);
    let mut faults = faults.clone();
    let mut sched: Scheduler<Event> = Scheduler::new();
    let mut slots: Vec<Option<Slot>> = vec![None; cfg.shards];
    let mut epochs: Vec<EpochStats> = Vec::new();
    let mut traces: Vec<EpochTrace> = Vec::new();
    let mut pushed = 0u64;
    // Single-threaded virtual-time run: every metric here is Stable by
    // construction (see `docs/observability.md`).
    let registry = Registry::new();
    let m_publishes = registry.counter("gps_sim_publishes_total", Stability::Stable);
    let m_degraded = registry.counter("gps_sim_degraded_publishes_total", Stability::Stable);
    let m_staleness = registry.histogram("gps_sim_report_staleness_ns", Stability::Stable);
    let mut was_degraded = false;
    // Non-Publish events in flight: publishes self-reschedule only while
    // work remains, so the heap drains when the run is over.
    let mut work_events = 0usize;

    let extra_ns = |shard: usize| -> u64 {
        faults
            .stragglers
            .iter()
            .filter(|(s, _)| *s == shard)
            .map(|(_, ns)| *ns)
            .sum()
    };

    if !edges.is_empty() {
        sched.schedule(0, Event::Emit(0));
        work_events += 1;
        sched.schedule(cfg.publish_every_ns, Event::Publish);
    }

    while let Some(event) = sched.pop() {
        match event {
            Event::Emit(i) => {
                work_events -= 1;
                let edge = edges[i];
                let shard = partitioner.shard_of(edge);
                pushed += 1;
                let delay = cfg
                    .leaf_link
                    .delay(&mut net_rng)
                    .saturating_add(extra_ns(shard));
                sched.schedule(delay, Event::Deliver { shard, edge });
                work_events += 1;
                if i + 1 < edges.len() {
                    sched.schedule(cfg.source_gap_ns, Event::Emit(i + 1));
                    work_events += 1;
                }
            }
            Event::Deliver { shard, edge } => {
                work_events -= 1;
                let leaf = &mut leaves[shard];
                // Fire a pending crash site on the first live arrival at or
                // past it (so sites that land in a lost window still fire).
                let live = !leaf.is_down();
                let arrivals = leaf.arrivals();
                let site = faults
                    .crashes
                    .iter_mut()
                    .find(|c| !c.fired && c.shard == shard && live && arrivals + 1 >= c.at_arrival);
                if let Some(site) = site {
                    site.fired = true;
                    let after = site.restore_after_ns;
                    leaf.crash_consuming(edge);
                    sched.schedule(after, Event::Restore { shard });
                    work_events += 1;
                } else if let Some(report) = leaf.deliver(edge) {
                    let delay = cfg
                        .leaf_link
                        .delay(&mut net_rng)
                        .saturating_add(extra_ns(shard));
                    let generated_at_ns = sched.now();
                    sched.schedule(
                        delay,
                        Event::Report {
                            report,
                            generated_at_ns,
                        },
                    );
                    work_events += 1;
                }
            }
            Event::Report {
                report,
                generated_at_ns,
            } => {
                work_events -= 1;
                // Aggregators batch and forward — no arithmetic (see the
                // module docs for why pre-merging would break bit-identity).
                let delay = cfg.agg_link.delay(&mut net_rng);
                sched.schedule(
                    delay,
                    Event::Forward {
                        report,
                        generated_at_ns,
                    },
                );
                work_events += 1;
            }
            Event::Forward {
                report,
                generated_at_ns,
            } => {
                work_events -= 1;
                let slot = &mut slots[report.shard];
                // Jittered links reorder reports; keep only the freshest.
                if slot.is_none_or(|s| s.arrivals < report.arrivals) {
                    *slot = Some(Slot {
                        estimates: report.estimates,
                        arrivals: report.arrivals,
                        generated_at_ns,
                    });
                }
            }
            Event::Publish => {
                let now = sched.now();
                let reporting: Vec<(usize, Slot)> = slots
                    .iter()
                    .enumerate()
                    .filter_map(|(l, s)| s.map(|s| (l, s)))
                    .collect();
                if !reporting.is_empty() {
                    let groups = group_by_aggregator(cfg, &reporting);
                    let group_refs: Vec<&[TriadEstimates]> =
                        groups.iter().map(Vec::as_slice).collect();
                    let degraded = reporting.len() < cfg.shards;
                    let _merged = if degraded {
                        TriadEstimates::merged_colored_tree_partial(&group_refs, cfg.shards)
                    } else {
                        TriadEstimates::merged_colored_tree(&group_refs)
                    };
                    let ages: Vec<u64> = reporting
                        .iter()
                        .map(|(_, s)| now - s.generated_at_ns)
                        .collect();
                    let max = ages.iter().copied().max().unwrap_or(0);
                    let mean = ages.iter().sum::<u64>() / ages.len() as u64;
                    m_publishes.incr();
                    for age in &ages {
                        m_staleness.record(*age);
                    }
                    if degraded {
                        m_degraded.incr();
                        if !was_degraded {
                            was_degraded = true;
                            registry.event(TelemetryEvent {
                                at: now,
                                kind: EventKind::DegradedEpoch,
                                shard: None,
                                epoch: Some(epochs.len() as u64 + 1),
                                detail: (cfg.shards - reporting.len()) as u64,
                            });
                        }
                    } else if was_degraded {
                        was_degraded = false;
                        registry.event(TelemetryEvent {
                            at: now,
                            kind: EventKind::EpochRecovered,
                            shard: None,
                            epoch: Some(epochs.len() as u64 + 1),
                            detail: 0,
                        });
                    }
                    // The publish's provenance trace, in virtual time.
                    // Distinct `sim_*` stage names keep the trace-name
                    // registry honest about which layer records what.
                    let oldest = reporting
                        .iter()
                        .map(|(_, s)| s.generated_at_ns)
                        .min()
                        .unwrap_or(now);
                    let newest = reporting
                        .iter()
                        .map(|(_, s)| s.generated_at_ns)
                        .max()
                        .unwrap_or(now);
                    let mut contributing = 0u64;
                    for (leaf, _) in &reporting {
                        contributing |= 1u64 << (*leaf).min(63);
                    }
                    let mut trace = EpochTrace::new(
                        epochs.len() as u64 + 1,
                        reporting.iter().map(|(_, s)| s.arrivals).sum(),
                        cfg.shards.min(u32::MAX as usize) as u32,
                        contributing,
                    );
                    trace.cause = if degraded {
                        TraceCause::Partial
                    } else {
                        TraceCause::Full
                    };
                    trace.report_skew_ns = newest - oldest;
                    trace.published_at_ns = now;
                    trace.stage("sim_report_spread", oldest, newest, reporting.len() as u64);
                    trace.stage("sim_publish_wait", newest, now, reporting.len() as u64);
                    traces.push(trace);
                    epochs.push(EpochStats {
                        at_ns: now,
                        reporting: reporting.len(),
                        degraded,
                        staleness_max_ns: max,
                        staleness_mean_ns: mean,
                    });
                }
                if work_events > 0 {
                    sched.schedule(cfg.publish_every_ns, Event::Publish);
                }
            }
            Event::Restore { shard } => {
                work_events -= 1;
                let generated_at_ns = sched.now();
                registry.event(TelemetryEvent {
                    at: generated_at_ns,
                    kind: EventKind::ShardRestart,
                    shard: Some(shard.min(u32::MAX as usize) as u32),
                    epoch: None,
                    detail: leaves[shard].lost(),
                });
                for report in leaves[shard].restore() {
                    let delay = cfg
                        .leaf_link
                        .delay(&mut net_rng)
                        .saturating_add(extra_ns(shard));
                    sched.schedule(
                        delay,
                        Event::Report {
                            report,
                            generated_at_ns,
                        },
                    );
                    work_events += 1;
                }
            }
        }
    }

    let finished_at_ns = sched.now();
    let lost_arrivals: u64 = leaves.iter().map(LeafNode::lost).sum();
    let restarts: u64 = leaves.iter().map(|l| u64::from(l.restarts())).sum();
    let finals: Vec<TriadEstimates> = leaves
        .iter()
        .map(|l| {
            l.estimates()
                .expect("every crash schedules a restore; leaves end live")
        })
        .collect();
    let flat = TriadEstimates::merged_colored(&finals);
    let all: Vec<(usize, Slot)> = finals
        .iter()
        .enumerate()
        .map(|(l, e)| {
            (
                l,
                Slot {
                    estimates: *e,
                    arrivals: 0,
                    generated_at_ns: 0,
                },
            )
        })
        .collect();
    let groups = group_by_aggregator(cfg, &all);
    let group_refs: Vec<&[TriadEstimates]> = groups.iter().map(Vec::as_slice).collect();
    let tree = TriadEstimates::merged_colored_tree(&group_refs);
    // Widen like the engine's degraded estimates do; skip when clean so
    // clean runs stay bit-identical to an unwidened merge.
    let (flat, tree) = if lost_arrivals > 0 {
        let f = lost_arrivals as f64 / (pushed.max(1)) as f64;
        (flat.widened_for_loss(f), tree.widened_for_loss(f))
    } else {
        (flat, tree)
    };

    // End-of-run totals (monotone over the run, so recording them once at
    // the end is equivalent to incrementing live — and cheaper).
    registry
        .counter("gps_sim_pushed_total", Stability::Stable)
        .add(pushed);
    registry
        .counter("gps_sim_lost_arrivals_total", Stability::Stable)
        .add(lost_arrivals);
    registry
        .counter("gps_sim_restarts_total", Stability::Stable)
        .add(restarts);

    SimOutcome {
        leaves: finals,
        flat,
        tree,
        pushed,
        lost_arrivals,
        restarts,
        epochs,
        finished_at_ns,
        telemetry: registry.snapshot(),
        traces,
    }
}

/// Per-aggregator report lists in (aggregator, leaf) order — the wire
/// layout the root merges over.
fn group_by_aggregator(cfg: &SimConfig, reporting: &[(usize, Slot)]) -> Vec<Vec<TriadEstimates>> {
    let mut groups: Vec<Vec<TriadEstimates>> = vec![Vec::new(); cfg.aggregators];
    for (leaf, slot) in reporting {
        groups[cfg.aggregator_of(*leaf)].push(slot.estimates);
    }
    groups
}
