//! Acceptance (b): estimate error and CI coverage vs exact ground truth,
//! across the scale-out grid (`S ∈ {16, 64, 256}` × keyspace skew ×
//! fault scenario), in virtual time.
//!
//! Bounds are calibrated to the physics of the colorful merge, not wished
//! into place: a `j`-edge subgraph is monochromatic with probability
//! `S^{-(j-1)}`, so triangle signal thins as `S²` while wedge signal only
//! thins as `S`. At `S = 256` a ~10k-triangle stream has *under one*
//! expected monochromatic triangle (9.5k/65k) — the triangle estimate is
//! legitimately near-useless there, and the suite asserts exactly the
//! graceful part: wedges stay tight at every `S`, triangles are tight at
//! `S = 16`, CI coverage holds where the CLT has anything to work with,
//! and faults never break any of it. `docs/scale-out.md` tabulates the
//! measured decay.

use gps_sim::{quality_point, Scenario, Skew, SweepPoint};

const N_EDGES: usize = 20_000;
const CAPACITY: usize = 8_192;

fn grid_point(shards: usize, skew: Skew, scenario: Scenario, seed: u64) -> SweepPoint {
    let aggregators = (shards / 8).max(2);
    quality_point(shards, aggregators, CAPACITY, skew, scenario, N_EDGES, seed)
}

/// Every grid point, every scenario: wedge estimates stay accurate and
/// covered, the tree merge stays bit-identical, and fault ledgers match
/// the scenario.
#[test]
fn wedges_stay_tight_across_the_full_grid() {
    for &shards in &[16usize, 64, 256] {
        for &skew in &[Skew::Hash, Skew::Zipf(1.0)] {
            for &scenario in &[Scenario::Clean, Scenario::Straggler, Scenario::CrashRestore] {
                for seed in [1u64, 2] {
                    let p = grid_point(shards, skew, scenario, seed);
                    let tag = format!("S={shards} {} {} seed={seed}", p.skew, p.scenario);
                    assert!(p.tree_identical, "{tag}: tree merge != flat merge");
                    // Wedge signal thins only as 1/S: stays tight everywhere
                    // (observed ≤ 0.06 across the calibration grid).
                    assert!(
                        p.wedge_are < 0.15,
                        "{tag}: wedge ARE {:.3} out of bounds",
                        p.wedge_are
                    );
                    assert!(p.wedge_covered, "{tag}: wedge CI missed the truth");
                    match scenario {
                        Scenario::Clean => {
                            assert_eq!(p.lost_arrivals, 0, "{tag}");
                            assert_eq!(p.restarts, 0, "{tag}");
                        }
                        Scenario::Straggler => {
                            assert_eq!(p.lost_arrivals, 0, "{tag}");
                            // The straggler's reports age at the root well
                            // past the injected 5 ms extra latency.
                            assert!(
                                p.staleness_max_ns > 5_000_000,
                                "{tag}: staleness {} ns too low",
                                p.staleness_max_ns
                            );
                        }
                        Scenario::CrashRestore => {
                            assert!(p.lost_arrivals > 0, "{tag}: crash lost nothing");
                            assert_eq!(p.restarts, 1, "{tag}");
                        }
                    }
                    assert!(p.epochs > 2, "{tag}: only {} publishes", p.epochs);
                }
            }
        }
    }
}

/// At `S = 16` the triangle estimator still has signal (monochromatic
/// probability 1/256 against ~10k–90k triangles): error is bounded and
/// 95% CIs cover the truth at near-nominal rates over seeds.
#[test]
fn triangles_are_accurate_and_covered_at_s16() {
    let mut covered = 0usize;
    let n = 12u64;
    for seed in 0..n {
        for &skew in &[Skew::Hash, Skew::Zipf(1.0)] {
            let p = grid_point(16, skew, Scenario::Clean, seed);
            assert!(
                p.tri_are < 1.0,
                "S=16 {} seed={seed}: triangle ARE {:.3}",
                p.skew,
                p.tri_are
            );
            covered += usize::from(p.tri_covered);
        }
    }
    // Calibrated: 23/24 covered; require ≥ 18/24 (nominal 95% minus slack
    // for the small-sample variance of the variance estimate).
    assert!(
        covered >= 18,
        "triangle CI covered truth only {covered}/24 times"
    );
}

/// Straggling delays reports but loses nothing: accuracy stays in the
/// clean regime (the delayed link reorders arrivals, so the draw differs,
/// but nothing is lost), while staleness and degraded-publish counts move.
#[test]
fn stragglers_cost_staleness_not_accuracy() {
    let clean = grid_point(64, Skew::Hash, Scenario::Clean, 5);
    let slow = grid_point(64, Skew::Hash, Scenario::Straggler, 5);
    assert_eq!(slow.lost_arrivals, 0);
    assert!(
        slow.wedge_are < 0.15 && slow.wedge_covered,
        "straggler run lost accuracy: wedge ARE {:.3}",
        slow.wedge_are
    );
    assert!(
        slow.staleness_max_ns > clean.staleness_max_ns,
        "straggler staleness {} must exceed clean {}",
        slow.staleness_max_ns,
        clean.staleness_max_ns
    );
    assert!(
        slow.degraded_epochs >= clean.degraded_epochs,
        "late reports can only increase partial publishes"
    );
}

/// Crash/restore keeps wedge accuracy within the clean run's regime (the
/// lost window is a small fraction of the stream) while the loss ledger
/// reports exactly what recovery cost.
#[test]
fn crash_restore_degrades_gracefully() {
    for seed in [3u64, 4, 5] {
        let p = grid_point(16, Skew::Zipf(1.0), Scenario::CrashRestore, seed);
        assert!(p.lost_arrivals > 0);
        assert_eq!(p.restarts, 1);
        assert!(
            p.wedge_are < 0.1,
            "seed={seed}: wedge ARE {:.3} after crash",
            p.wedge_are
        );
        assert!(p.wedge_covered, "seed={seed}: widened CI missed truth");
        assert!(p.tree_identical, "seed={seed}");
    }
}
