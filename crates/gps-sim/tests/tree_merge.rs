//! Acceptance (a): the two-level merge tree is **bit-identical** to the
//! flat `merged_colored` merge on clean runs at `S ∈ {16, 64, 256}` —
//! and, because aggregators only forward (all arithmetic happens once at
//! the root, over leaves in leaf order), the identity survives stragglers
//! and crash/restore too.

use gps_core::weights::TriangleWeight;
use gps_sim::{run_cluster, stream_for, SimConfig, SimFaults, Skew};

fn clean_run(shards: usize, aggregators: usize, seed: u64) -> gps_sim::SimOutcome {
    let edges = stream_for(Skew::Hash, 10_000, seed);
    let mut cfg = SimConfig::new(shards, aggregators, 4_096, seed);
    cfg.epoch_every = ((10_000 / shards / 4) as u64).clamp(8, 256);
    run_cluster(&cfg, &SimFaults::none(), TriangleWeight::default(), &edges)
}

#[test]
fn tree_merge_is_bit_identical_to_flat_at_s16() {
    let out = clean_run(16, 4, 11);
    assert!(out.tree_matches_flat(), "S=16: tree and flat merges differ");
    assert!(out.epochs.len() > 2, "publishes must have happened");
}

#[test]
fn tree_merge_is_bit_identical_to_flat_at_s64() {
    let out = clean_run(64, 8, 12);
    assert!(out.tree_matches_flat(), "S=64: tree and flat merges differ");
}

#[test]
fn tree_merge_is_bit_identical_to_flat_at_s256() {
    let out = clean_run(256, 32, 13);
    assert!(
        out.tree_matches_flat(),
        "S=256: tree and flat merges differ"
    );
    assert_eq!(out.pushed, 10_000);
}

#[test]
fn tree_identity_is_independent_of_aggregator_fanout() {
    // Same cluster, different K: the published grouping changes but the
    // root's arithmetic is over the same leaf order, so all fanouts agree
    // with each other bit-for-bit.
    let base = clean_run(64, 2, 14);
    for aggregators in [4, 8, 16, 64] {
        let out = clean_run(64, aggregators, 14);
        assert_eq!(
            out.fingerprint(),
            base.fingerprint(),
            "K={aggregators} changed the merged bits"
        );
    }
}

#[test]
fn tree_identity_survives_stragglers_and_crashes() {
    let edges = stream_for(Skew::Zipf(1.0), 10_000, 15);
    let mut cfg = SimConfig::new(64, 8, 4_096, 15);
    cfg.epoch_every = 32;
    cfg.checkpoint_every = 16;
    let faults = SimFaults::none()
        .straggler(2, 5_000_000)
        .crash_at(1, 40, 2_000_000)
        .crash_at(5, 60, 3_000_000);
    let out = run_cluster(&cfg, &faults, TriangleWeight::default(), &edges);
    assert!(out.tree_matches_flat(), "faulted run: merges differ");
    assert_eq!(out.restarts, 2);
    assert!(out.lost_arrivals > 0, "crashes must lose arrivals");
}
