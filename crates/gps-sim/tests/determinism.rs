//! Acceptance (c): same-seed simulations are identical **to the f64
//! bit** — the virtual clock, stable event heap, seeded jitter, and the
//! production code's own seeded sampling leave no nondeterminism anywhere,
//! even through crash/restore and straggler reordering.
//!
//! Committed seeds shift by `GPS_SEED_OFFSET` when set: CI re-runs the
//! suite under a small seed matrix, because the contract is *every* seed
//! replays exactly, not three lucky ones.

use gps_core::weights::TriangleWeight;
use gps_sim::{run_cluster, stream_for, SimConfig, SimFaults, Skew};

/// Suite seed: the committed base shifted by the CI matrix offset.
fn seed(base: u64) -> u64 {
    let offset = std::env::var("GPS_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base + offset
}

fn faulted_cfg(seed: u64) -> (SimConfig, SimFaults) {
    let mut cfg = SimConfig::new(64, 8, 4_096, seed);
    cfg.epoch_every = 32;
    cfg.checkpoint_every = 16;
    let faults = SimFaults::none()
        .straggler(3, 5_000_000)
        .crash_at(1, 40, 2_000_000);
    (cfg, faults)
}

#[test]
fn same_seed_same_bits_clean() {
    let edges = stream_for(Skew::Hash, 8_000, seed(21));
    let cfg = SimConfig::new(16, 4, 4_096, seed(21));
    let a = run_cluster(&cfg, &SimFaults::none(), TriangleWeight::default(), &edges);
    let b = run_cluster(&cfg, &SimFaults::none(), TriangleWeight::default(), &edges);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn same_seed_same_bits_under_faults() {
    let edges = stream_for(Skew::Zipf(1.0), 8_000, seed(22));
    let (cfg, faults) = faulted_cfg(seed(22));
    let a = run_cluster(&cfg, &faults, TriangleWeight::default(), &edges);
    let b = run_cluster(&cfg, &faults, TriangleWeight::default(), &edges);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // The faults actually exercised the recovery machinery.
    assert_eq!(a.restarts, 1);
    assert!(a.lost_arrivals > 0);
}

#[test]
fn different_seeds_different_runs() {
    let edges = stream_for(Skew::Hash, 8_000, seed(23));
    let a = run_cluster(
        &SimConfig::new(16, 4, 4_096, seed(23)),
        &SimFaults::none(),
        TriangleWeight::default(),
        &edges,
    );
    let b = run_cluster(
        &SimConfig::new(16, 4, 4_096, seed(24)),
        &SimFaults::none(),
        TriangleWeight::default(),
        &edges,
    );
    assert_ne!(
        a.fingerprint(),
        b.fingerprint(),
        "different engine seeds must draw different samples"
    );
}

#[test]
fn streams_are_deterministic_in_their_seed() {
    for skew in [Skew::Hash, Skew::Zipf(1.0)] {
        assert_eq!(
            stream_for(skew, 5_000, seed(31)),
            stream_for(skew, 5_000, seed(31)),
            "{skew:?}"
        );
        assert_ne!(
            stream_for(skew, 5_000, seed(31)),
            stream_for(skew, 5_000, seed(32)),
            "{skew:?}"
        );
    }
}
