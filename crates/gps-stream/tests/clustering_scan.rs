//! Diagnostic scan (ignored by default): clustering/triangle profiles of
//! candidate generator configurations, used to calibrate the corpus.

use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_stream::gen;

#[test]
#[ignore]
fn scan_configs() {
    let configs: Vec<(&str, Vec<gps_graph::Edge>)> = vec![
        ("hk m4 p85", gen::holme_kim(55_000, 4, 0.85, 1)),
        ("hk m6 p95", gen::holme_kim(37_000, 6, 0.95, 1)),
        ("hk m8 p97", gen::holme_kim(28_000, 8, 0.97, 1)),
        ("hk m2 p10", gen::holme_kim(110_000, 2, 0.10, 1)),
        ("hk m2 p08", gen::holme_kim(120_000, 2, 0.08, 1)),
        ("hk m2 p20", gen::holme_kim(120_000, 2, 0.20, 1)),
        ("hk m3 p15", gen::holme_kim(95_000, 3, 0.15, 1)),
        ("cl g2.8", gen::chung_lu(140_000, 280_000, 2.8, 1)),
        ("cl g2.2", gen::chung_lu(140_000, 280_000, 2.2, 1)),
    ];
    for (name, edges) in configs {
        let g = CsrGraph::from_edges(&edges);
        let t = exact::triangle_count(&g);
        let a = exact::global_clustering(&g);
        println!("{name:12} |K|={:>7} T={:>8} alpha={a:.4}", edges.len(), t);
    }
}

#[test]
#[ignore]
fn scan_collab() {
    for (name, n, c, lo, hi, skew) in [
        (
            "collab 20k/12k s0.6",
            20_000u32,
            12_000usize,
            3usize,
            7usize,
            0.6f64,
        ),
        ("collab 40k/24k s0.6", 40_000, 24_000, 3, 7, 0.6),
        ("collab 40k/24k s0.3", 40_000, 24_000, 3, 7, 0.3),
        ("collab 40k/24k s0.9", 40_000, 24_000, 3, 7, 0.9),
        ("collab 60k/30k s0.5", 60_000, 30_000, 3, 8, 0.5),
        ("collab 80k/40k s0.4", 80_000, 40_000, 3, 6, 0.4),
        ("collab 60k/16k 4-10 s0.2", 60_000, 16_000, 4, 10, 0.2),
        ("collab 70k/14k 4-12 s0.15", 70_000, 14_000, 4, 12, 0.15),
        ("collab 80k/12k 5-14 s0.1", 80_000, 12_000, 5, 14, 0.1),
        ("collab 50k/28k 3-6 s0.3", 50_000, 28_000, 3, 6, 0.3),
    ] {
        let edges = gen::collaboration(n, c, (lo, hi), skew, 1);
        let g = CsrGraph::from_edges(&edges);
        let t = exact::triangle_count(&g);
        let a = exact::global_clustering(&g);
        println!("{name:22} |K|={:>7} T={:>8} alpha={a:.4}", edges.len(), t);
    }
}
