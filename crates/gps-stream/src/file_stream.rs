//! Lazy single-pass edge streaming from disk.
//!
//! `gps_graph::io::read_edge_list` loads a whole edge list into memory —
//! fine for experiments that also need exact ground truth, but the entire
//! point of the paper's streaming model is that the graph need *not* fit in
//! memory. [`EdgeFileStream`] yields edges one line at a time with a single
//! reused line buffer, so sampling a 100-GB edge list needs memory only for
//! the reservoir (plus the node relabeling table).
//!
//! Deduplication is intentionally NOT performed here (that would require
//! remembering all past edges, defeating streaming); the GPS sampler
//! already skips duplicates of *currently sampled* edges, and the paper's
//! model assumes unique edges. For strict simplification, preprocess with
//! `gps_graph::io`.

use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use gps_graph::error::GraphError;
use gps_graph::io::NodeRelabeler;
use gps_graph::types::Edge;

/// Streaming reader over a white-space separated edge list.
///
/// Yields `Result<Edge, GraphError>` per data line; `#`/`%` comments and
/// blank lines are skipped, self-loops are dropped, extra columns ignored,
/// and sparse ids are relabeled densely in first-seen order.
pub struct EdgeFileStream<R: Read> {
    reader: BufReader<R>,
    relabeler: NodeRelabeler,
    line: String,
    lineno: usize,
    edges_seen: u64,
}

impl EdgeFileStream<std::fs::File> {
    /// Opens a file for streaming.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, GraphError> {
        Ok(Self::new(std::fs::File::open(path)?))
    }
}

impl<R: Read> EdgeFileStream<R> {
    /// Wraps any reader (sockets, pipes, compressed readers, …).
    pub fn new(reader: R) -> Self {
        EdgeFileStream {
            reader: BufReader::new(reader),
            relabeler: NodeRelabeler::new(),
            line: String::new(),
            lineno: 0,
            edges_seen: 0,
        }
    }

    /// Edges yielded so far.
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Distinct nodes seen so far.
    pub fn nodes_seen(&self) -> usize {
        self.relabeler.len()
    }
}

impl<R: Read> Iterator for EdgeFileStream<R> {
    type Item = Result<Edge, GraphError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Err(e) => return Some(Err(GraphError::Io(e))),
                Ok(0) => return None,
                Ok(_) => {}
            }
            self.lineno += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            let parse_err = GraphError::Parse {
                line: self.lineno,
                content: trimmed.chars().take(80).collect(),
            };
            let (Some(a), Some(b)) = (fields.next(), fields.next()) else {
                return Some(Err(parse_err));
            };
            let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
                return Some(Err(parse_err));
            };
            if a == b {
                continue; // paper model: no self-loops
            }
            let a = match self.relabeler.relabel(a) {
                Ok(id) => id,
                Err(e) => return Some(Err(e)),
            };
            let b = match self.relabeler.relabel(b) {
                Ok(id) => id,
                Err(e) => return Some(Err(e)),
            };
            self.edges_seen += 1;
            return Some(Ok(Edge::new(a, b)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_edges_lazily_with_relabeling() {
        let input = "# header\n100 200\n200 300\n\n% note\n100 300 7.5\n";
        let mut stream = EdgeFileStream::new(input.as_bytes());
        let edges: Vec<Edge> = stream.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]
        );
        assert_eq!(stream.edges_seen(), 3);
        assert_eq!(stream.nodes_seen(), 3);
    }

    #[test]
    fn self_loops_are_dropped_silently() {
        let input = "5 5\n5 6\n";
        let edges: Vec<Edge> = EdgeFileStream::new(input.as_bytes())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let input = "1 2\nbad line\n3 4\n";
        let mut stream = EdgeFileStream::new(input.as_bytes());
        assert!(stream.next().unwrap().is_ok());
        match stream.next().unwrap() {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        // The stream recovers and continues after an error.
        assert!(stream.next().unwrap().is_ok());
        assert!(stream.next().is_none());
    }

    #[test]
    fn feeds_a_sampler_end_to_end() {
        use std::fmt::Write as _;
        // 300-edge path written as text, streamed into a reservoir of 50.
        let mut text = String::new();
        for i in 0..300u32 {
            writeln!(text, "{} {}", i * 7 + 1, (i + 1) * 7 + 1).unwrap();
        }
        let stream = EdgeFileStream::new(text.as_bytes());
        let mut edges = 0u32;
        for r in stream {
            r.unwrap();
            edges += 1;
        }
        assert_eq!(edges, 300);
    }

    #[test]
    fn agrees_with_eager_loader() {
        let input = "9 4\n4 2\n2 9\n7 7\n9 2\n";
        let lazy: Vec<Edge> = EdgeFileStream::new(input.as_bytes())
            .map(|r| r.unwrap())
            .collect();
        let eager = gps_graph::io::read_edge_list(
            input.as_bytes(),
            gps_graph::io::ReadOptions {
                dedupe: false,
                skip_self_loops: true,
            },
        )
        .unwrap();
        assert_eq!(lazy, eager);
    }
}
