//! Watts–Strogatz small-world graphs.

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a Watts–Strogatz graph: a ring of `n` nodes each linked to its
/// `k/2` nearest neighbors on both sides, with each edge rewired to a random
/// target with probability `beta`.
///
/// With small `beta` this keeps the lattice's high local clustering and
/// near-constant degrees — the profile of infrastructure networks (the
/// paper's infra-roadNet-CA), where triangle-weighted sampling has few
/// triangles to chase.
///
/// # Panics
/// Panics if `k` is odd, `k < 2`, `n <= k`, or `beta ∉ [0, 1]`.
pub fn watts_strogatz(n: NodeId, k: usize, beta: f64, seed: u64) -> Vec<Edge> {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!((n as usize) > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = EdgeAccumulator::with_capacity(n as usize * k / 2);

    // Ring lattice.
    for v in 0..n {
        for offset in 1..=(k / 2) as NodeId {
            let w = (v + offset) % n;
            acc.push(Edge::new(v, w));
        }
    }
    let mut edges = acc.into_edges();

    // Rewire pass: replace (v, w) by (v, random) with probability beta,
    // skipping rewires that would duplicate or self-loop. Membership under
    // rewiring is answered by an adjacency over the current edge set (same
    // substrate as the other generators' dedup; identical predicate, so
    // seeded outputs are unchanged).
    let mut seen: gps_graph::AdjacencyBackend<()> = gps_graph::AdjacencyBackend::with_capacity(
        gps_graph::BackendKind::Compact,
        n as usize,
        edges.len(),
    );
    for &e in &edges {
        seen.insert(e, ());
    }
    for slot in &mut edges {
        if rng.random::<f64>() >= beta {
            continue;
        }
        let old = *slot;
        let v = old.u();
        let mut target = rng.random_range(0..n);
        let mut tries = 0;
        while (target == v || seen.contains(Edge::new(v, target))) && tries < 32 {
            target = rng.random_range(0..n);
            tries += 1;
        }
        if target == v || seen.contains(Edge::new(v, target)) {
            continue;
        }
        let new = Edge::new(v, target);
        seen.remove(old);
        seen.insert(new, ());
        *slot = new;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;

    #[test]
    fn lattice_shape_without_rewiring() {
        let edges = watts_strogatz(100, 4, 0.0, 0);
        assert_eq!(edges.len(), 200);
        assert_simple(&edges);
        let g = CsrGraph::from_edges(&edges);
        // Pure k=4 ring: every node has degree exactly 4.
        assert!((0..100u32).all(|v| g.degree(v) == 4));
        // k=4 ring has n triangles (each node closes one with offsets 1,2).
        assert_eq!(exact::triangle_count(&g), 100);
    }

    #[test]
    fn rewiring_preserves_edge_count_and_simplicity() {
        let edges = watts_strogatz(200, 6, 0.3, 9);
        assert_eq!(edges.len(), 600);
        assert_simple(&edges);
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let rigid = watts_strogatz(2000, 6, 0.0, 1);
        let loose = watts_strogatz(2000, 6, 0.8, 1);
        let a0 = exact::global_clustering(&CsrGraph::from_edges(&rigid));
        let a1 = exact::global_clustering(&CsrGraph::from_edges(&loose));
        assert!(
            a1 < a0 / 2.0,
            "rewiring should destroy clustering: {a0} -> {a1}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(watts_strogatz(64, 4, 0.2, 3), watts_strogatz(64, 4, 0.2, 3));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.0, 0);
    }
}
