//! Erdős–Rényi `G(n, m)` random graphs.

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random simple graph with `n` nodes and exactly `m`
/// distinct edges (`G(n, m)` model).
///
/// ER graphs have Poisson degrees and vanishing clustering — the paper-less
/// "control" workload where triangle-weighted sampling has the least to
/// exploit.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n·(n-1)/2`, or if
/// `n < 2` while `m > 0`.
pub fn erdos_renyi(n: NodeId, m: usize, seed: u64) -> Vec<Edge> {
    let possible = n as u64 * (n as u64 - 1) / 2;
    assert!(
        m as u64 <= possible,
        "G({n}, {m}) requested but only {possible} edges possible"
    );
    if m == 0 {
        return vec![];
    }
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = EdgeAccumulator::with_capacity(m);

    // Rejection sampling is fast while m is well below the ceiling; for
    // dense requests (> 50% of possible edges) fall back to sampling the
    // complement-free exact way via shuffled enumeration.
    if (m as u64) * 2 <= possible {
        while acc.len() < m {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if let Some(e) = Edge::try_new(a, b) {
                acc.push(e);
            }
        }
        acc.into_edges()
    } else {
        let mut all: Vec<Edge> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| Edge::new(a, b)))
            .collect();
        crate::permute::shuffle_in_place(&mut all, rng.random());
        all.truncate(m);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;

    #[test]
    fn exact_edge_count_and_simplicity() {
        let edges = erdos_renyi(100, 500, 1);
        assert_eq!(edges.len(), 500);
        assert_simple(&edges);
        assert!(edges.iter().all(|e| e.v() < 100));
    }

    #[test]
    fn dense_path_uses_enumeration() {
        // 10 nodes → 45 possible; ask for 40 (> half).
        let edges = erdos_renyi(10, 40, 3);
        assert_eq!(edges.len(), 40);
        assert_simple(&edges);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(erdos_renyi(50, 200, 9), erdos_renyi(50, 200, 9));
        assert_ne!(erdos_renyi(50, 200, 9), erdos_renyi(50, 200, 10));
    }

    #[test]
    fn zero_edges() {
        assert!(erdos_renyi(5, 0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn rejects_impossible_density() {
        erdos_renyi(3, 10, 0);
    }

    #[test]
    fn complete_graph_possible() {
        let edges = erdos_renyi(6, 15, 2);
        assert_eq!(edges.len(), 15);
        assert_simple(&edges);
    }
}
