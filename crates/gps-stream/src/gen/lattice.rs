//! Grid lattices with optional diagonal shortcuts.

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a `rows × cols` grid graph; each cell additionally gains one
/// random diagonal with probability `diag_p` (creating a pair of triangles
/// per diagonal).
///
/// A pure grid (`diag_p = 0`) has *zero* triangles and near-constant degree
/// — the adversarial workload for triangle estimators, matching the paper's
/// infra-roadNet-CA where TRIEST degrades hardest (Table 3). A small
/// `diag_p` models occasional cross streets so estimators have a nonzero
/// target.
///
/// # Panics
/// Panics if fewer than 2 total nodes, the node count overflows `u32`, or
/// `diag_p ∉ [0, 1]`.
pub fn grid(rows: u32, cols: u32, diag_p: f64, seed: u64) -> Vec<Edge> {
    assert!(rows as u64 * cols as u64 >= 2, "need at least two nodes");
    assert!(
        rows as u64 * cols as u64 <= u32::MAX as u64,
        "grid too large for u32 ids"
    );
    assert!((0.0..=1.0).contains(&diag_p));
    let mut rng = SmallRng::seed_from_u64(seed);
    let id = |r: u32, c: u32| -> NodeId { r * cols + c };
    let mut acc = EdgeAccumulator::with_capacity((rows as usize) * (cols as usize) * 2);

    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                acc.push(Edge::new(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                acc.push(Edge::new(id(r, c), id(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols && rng.random::<f64>() < diag_p {
                // Pick one of the two diagonals of the cell at random.
                if rng.random::<bool>() {
                    acc.push(Edge::new(id(r, c), id(r + 1, c + 1)));
                } else {
                    acc.push(Edge::new(id(r, c + 1), id(r + 1, c)));
                }
            }
        }
    }
    acc.into_edges()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;

    #[test]
    fn pure_grid_shape() {
        let edges = grid(4, 5, 0.0, 0);
        // 4x5 grid: 4*(5-1) horizontal + 5*(4-1) vertical = 16 + 15 = 31.
        assert_eq!(edges.len(), 31);
        assert_simple(&edges);
        let g = CsrGraph::from_edges(&edges);
        assert_eq!(exact::triangle_count(&g), 0, "pure grids are triangle-free");
    }

    #[test]
    fn diagonals_create_triangles() {
        let edges = grid(20, 20, 1.0, 1);
        let g = CsrGraph::from_edges(&edges);
        // Every cell has a diagonal → 2 triangles per cell.
        assert_eq!(exact::triangle_count(&g), 2 * 19 * 19);
    }

    #[test]
    fn partial_diagonals_between_extremes() {
        let edges = grid(30, 30, 0.2, 5);
        let g = CsrGraph::from_edges(&edges);
        let t = exact::triangle_count(&g);
        assert!(t > 0 && t < 2 * 29 * 29);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(grid(10, 10, 0.5, 2), grid(10, 10, 0.5, 2));
        assert_ne!(grid(10, 10, 0.5, 2), grid(10, 10, 0.5, 3));
    }

    #[test]
    fn single_row_is_a_path() {
        let edges = grid(1, 6, 0.0, 0);
        assert_eq!(edges.len(), 5);
    }
}
