//! R-MAT recursive-matrix graphs (Chakrabarti, Zhan & Faloutsos).

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities for the recursive matrix. Must sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left (both endpoints in the low half) — the "community core".
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl RmatParams {
    /// The classic skewed setting used for web/internet topologies
    /// (a=0.57, b=0.19, c=0.19, d=0.05).
    pub fn web() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// A milder skew approximating collaboration networks.
    pub fn social() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and `m` distinct edges.
///
/// R-MAT's recursive quadrant descent yields skewed degrees and
/// community-like structure; it is the standard synthetic stand-in for web
/// and autonomous-system graphs (the paper's web-google, web-BerkStan,
/// tech-as-skitter).
///
/// # Panics
/// Panics if the quadrant probabilities do not sum to ≈1, `scale` is 0 or
/// exceeds 31, or `m` exceeds the possible simple-edge count.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Vec<Edge> {
    assert!((1..=31).contains(&scale), "scale must be in 1..=31");
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1 (got {sum})"
    );
    let n: u64 = 1 << scale;
    let possible = n * (n - 1) / 2;
    assert!((m as u64) <= possible, "too many edges requested");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = EdgeAccumulator::with_capacity(m);
    // Noise keeps repeated descents from always picking identical cells,
    // which would stall deduplicated generation at high densities.
    let noise = 0.1;
    let mut attempts = 0u64;
    let max_attempts = (m as u64).saturating_mul(1000).max(1_000_000);
    while acc.len() < m {
        attempts += 1;
        assert!(
            attempts < max_attempts,
            "R-MAT generation stalled: {} of {m} edges after {attempts} attempts",
            acc.len()
        );
        let (mut row, mut col) = (0u64, 0u64);
        let (mut a, mut b, mut c, mut d) = (params.a, params.b, params.c, params.d);
        for level in 0..scale {
            let half = 1u64 << (scale - 1 - level);
            let x = rng.random::<f64>() * (a + b + c + d);
            if x < a {
                // top-left: nothing to add
            } else if x < a + b {
                col += half;
            } else if x < a + b + c {
                row += half;
            } else {
                row += half;
                col += half;
            }
            // Perturb probabilities per level (standard R-MAT smoothing).
            let jitter = |p: f64, r: f64| p * (1.0 - noise / 2.0 + noise * r);
            a = jitter(a, rng.random::<f64>());
            b = jitter(b, rng.random::<f64>());
            c = jitter(c, rng.random::<f64>());
            d = jitter(d, rng.random::<f64>());
        }
        if let Some(e) = Edge::try_new(row as NodeId, col as NodeId) {
            acc.push(e);
        }
    }
    acc.into_edges()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::degrees::DegreeStats;

    #[test]
    fn exact_count_simple_and_in_range() {
        let edges = rmat(10, 4000, RmatParams::web(), 3);
        assert_eq!(edges.len(), 4000);
        assert_simple(&edges);
        assert!(edges.iter().all(|e| (e.v() as u64) < (1 << 10)));
    }

    #[test]
    fn web_params_are_skewed() {
        let edges = rmat(12, 20000, RmatParams::web(), 17);
        let stats = DegreeStats::of(&CsrGraph::from_edges(&edges));
        assert!(
            stats.is_heavy_tailed(),
            "R-MAT web should be skewed: {stats:?}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            rmat(8, 500, RmatParams::social(), 1),
            rmat(8, 500, RmatParams::social(), 1)
        );
        assert_ne!(
            rmat(8, 500, RmatParams::social(), 1),
            rmat(8, 500, RmatParams::social(), 2)
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(
            4,
            5,
            RmatParams {
                a: 0.9,
                b: 0.3,
                c: 0.1,
                d: 0.1,
            },
            0,
        );
    }
}
