//! Holme–Kim power-law graphs with tunable clustering.

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use gps_graph::AdjacencyMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a Holme–Kim "power-law cluster" graph: Barabási–Albert growth
/// where, after each preferential-attachment step, a *triad formation* step
/// fires with probability `triad_p` and connects the new node to a random
/// neighbor of the node it just attached to — closing a triangle.
///
/// This is the stand-in for the paper's high-clustering social graphs
/// (ca-hollywood-2009 α≈0.31, socfb-* α≈0.10): `triad_p` directly dials the
/// global clustering coefficient while keeping the BA degree tail.
///
/// # Panics
/// Panics if `n <= m_per_node`, `m_per_node == 0`, or `triad_p ∉ [0, 1]`.
pub fn holme_kim(n: NodeId, m_per_node: usize, triad_p: f64, seed: u64) -> Vec<Edge> {
    assert!(m_per_node >= 1);
    assert!(
        (n as usize) > m_per_node,
        "need more nodes than edges per node"
    );
    assert!(
        (0.0..=1.0).contains(&triad_p),
        "triad_p must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let m0 = m_per_node + 1;
    let expected_edges = m0 * (m0 - 1) / 2 + (n as usize - m0) * m_per_node;
    let mut acc = EdgeAccumulator::with_capacity(expected_edges);
    let mut graph: AdjacencyMap<()> = AdjacencyMap::with_node_capacity(n as usize);
    let mut stubs: Vec<NodeId> = Vec::with_capacity(expected_edges * 2);

    let add = |acc: &mut EdgeAccumulator,
               graph: &mut AdjacencyMap<()>,
               stubs: &mut Vec<NodeId>,
               e: Edge|
     -> bool {
        if acc.push(e) {
            graph.insert(e, ());
            stubs.push(e.u());
            stubs.push(e.v());
            true
        } else {
            false
        }
    };

    for a in 0..m0 as NodeId {
        for b in (a + 1)..m0 as NodeId {
            add(&mut acc, &mut graph, &mut stubs, Edge::new(a, b));
        }
    }

    for v in m0 as NodeId..n {
        let mut last_attached: Option<NodeId> = None;
        let mut added = 0usize;
        // Cap attempts: in pathological corners (tiny graphs) both PA and
        // triad steps can keep hitting existing edges.
        let mut attempts = 0usize;
        while added < m_per_node && attempts < 50 * m_per_node {
            attempts += 1;
            let use_triad = last_attached.is_some() && rng.random::<f64>() < triad_p;
            let target = if use_triad {
                // Triad formation: random neighbor of the last attachee.
                let anchor = last_attached.unwrap();
                let deg = graph.degree(anchor);
                let idx = rng.random_range(0..deg);
                let nbr = graph
                    .neighbors(anchor)
                    .nth(idx)
                    .map(|(w, _)| w)
                    .expect("degree-bounded index");
                nbr
            } else {
                stubs[rng.random_range(0..stubs.len())]
            };
            if target == v {
                continue;
            }
            let e = Edge::new(v, target);
            if add(&mut acc, &mut graph, &mut stubs, e) {
                added += 1;
                last_attached = Some(target);
            }
        }
    }
    acc.into_edges()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::degrees::DegreeStats;
    use gps_graph::exact;

    #[test]
    fn simple_and_roughly_sized() {
        let edges = holme_kim(1000, 3, 0.5, 7);
        assert_simple(&edges);
        // All but boundary-case retries should land: ≥ 95% of nominal.
        let nominal = 6 + 997 * 3;
        assert!(
            edges.len() >= nominal * 95 / 100,
            "got {} of {nominal}",
            edges.len()
        );
    }

    #[test]
    fn triad_probability_raises_clustering() {
        let low = holme_kim(4000, 3, 0.0, 13);
        let high = holme_kim(4000, 3, 0.9, 13);
        let a_low = exact::global_clustering(&CsrGraph::from_edges(&low));
        let a_high = exact::global_clustering(&CsrGraph::from_edges(&high));
        assert!(
            a_high > 2.0 * a_low,
            "triad formation should raise clustering: {a_low} vs {a_high}"
        );
        assert!(
            a_high > 0.1,
            "high triad_p should give strong clustering, got {a_high}"
        );
    }

    #[test]
    fn keeps_heavy_tail() {
        let edges = holme_kim(3000, 2, 0.6, 3);
        let stats = DegreeStats::of(&CsrGraph::from_edges(&edges));
        assert!(stats.is_heavy_tailed());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(holme_kim(500, 2, 0.5, 1), holme_kim(500, 2, 0.5, 1));
        assert_ne!(holme_kim(500, 2, 0.5, 1), holme_kim(500, 2, 0.5, 2));
    }
}
