//! Holme–Kim power-law graphs with tunable clustering.

use gps_graph::types::{Edge, NodeId};
use gps_graph::{AdjacencyBackend, BackendKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a Holme–Kim "power-law cluster" graph: Barabási–Albert growth
/// where, after each preferential-attachment step, a *triad formation* step
/// fires with probability `triad_p` and connects the new node to a random
/// neighbor of the node it just attached to — closing a triangle.
///
/// This is the stand-in for the paper's high-clustering social graphs
/// (ca-hollywood-2009 α≈0.31, socfb-* α≈0.10): `triad_p` directly dials the
/// global clustering coefficient while keeping the BA degree tail.
///
/// The growing graph lives on the compact adjacency backend — the same
/// substrate as the samplers it feeds: the triad step's uniform-neighbor
/// draw is O(1) slice indexing, and duplicate suppression is answered by
/// the adjacency's own membership check on insert (no separate hash-set
/// accumulator; the dedup predicate is identical, so seeded outputs are
/// unchanged). Use [`holme_kim_with_backend`] to run on the nested-hash
/// oracle instead.
///
/// # Panics
/// Panics if `n <= m_per_node`, `m_per_node == 0`, or `triad_p ∉ [0, 1]`.
pub fn holme_kim(n: NodeId, m_per_node: usize, triad_p: f64, seed: u64) -> Vec<Edge> {
    holme_kim_with_backend(n, m_per_node, triad_p, seed, BackendKind::Compact)
}

/// [`holme_kim`] on an explicit adjacency backend.
///
/// The two backends realize the *same* random-graph model (each triad step
/// picks a uniform neighbor of the anchor), but their neighbor orders
/// differ, so a given seed yields a different — equally distributed —
/// concrete graph per backend. Within one backend, output is fully
/// deterministic in the seed.
///
/// # Panics
/// Same conditions as [`holme_kim`].
pub fn holme_kim_with_backend(
    n: NodeId,
    m_per_node: usize,
    triad_p: f64,
    seed: u64,
    backend: BackendKind,
) -> Vec<Edge> {
    assert!(m_per_node >= 1);
    assert!(
        (n as usize) > m_per_node,
        "need more nodes than edges per node"
    );
    assert!(
        (0.0..=1.0).contains(&triad_p),
        "triad_p must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let m0 = m_per_node + 1;
    let expected_edges = m0 * (m0 - 1) / 2 + (n as usize - m0) * m_per_node;
    let mut edges: Vec<Edge> = Vec::with_capacity(expected_edges);
    let mut graph: AdjacencyBackend<()> =
        AdjacencyBackend::with_capacity(backend, n as usize, expected_edges);
    let mut stubs: Vec<NodeId> = Vec::with_capacity(expected_edges * 2);

    // Dedup against the growing adjacency itself (ROADMAP generator-speed
    // item): `insert` answers "was it new?" from the endpoint's own
    // neighbor list, replacing the separate hash-set accumulator the other
    // generators use. The membership predicate is identical, so seeded
    // outputs are unchanged.
    let add = |edges: &mut Vec<Edge>,
               graph: &mut AdjacencyBackend<()>,
               stubs: &mut Vec<NodeId>,
               e: Edge|
     -> bool {
        if graph.insert(e, ()).is_none() {
            edges.push(e);
            stubs.push(e.u());
            stubs.push(e.v());
            true
        } else {
            false
        }
    };

    for a in 0..m0 as NodeId {
        for b in (a + 1)..m0 as NodeId {
            add(&mut edges, &mut graph, &mut stubs, Edge::new(a, b));
        }
    }

    for v in m0 as NodeId..n {
        let mut last_attached: Option<NodeId> = None;
        let mut added = 0usize;
        // Cap attempts: in pathological corners (tiny graphs) both PA and
        // triad steps can keep hitting existing edges.
        let mut attempts = 0usize;
        while added < m_per_node && attempts < 50 * m_per_node {
            attempts += 1;
            let use_triad = last_attached.is_some() && rng.random::<f64>() < triad_p;
            let target = if use_triad {
                // Triad formation: random neighbor of the last attachee.
                let anchor = last_attached.unwrap();
                let deg = graph.degree(anchor);
                let idx = rng.random_range(0..deg);
                graph
                    .neighbor_at(anchor, idx)
                    .map(|(w, ())| w)
                    .expect("degree-bounded index")
            } else {
                stubs[rng.random_range(0..stubs.len())]
            };
            if target == v {
                continue;
            }
            let e = Edge::new(v, target);
            if add(&mut edges, &mut graph, &mut stubs, e) {
                added += 1;
                last_attached = Some(target);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::degrees::DegreeStats;
    use gps_graph::exact;

    #[test]
    fn simple_and_roughly_sized() {
        let edges = holme_kim(1000, 3, 0.5, 7);
        assert_simple(&edges);
        // All but boundary-case retries should land: ≥ 95% of nominal.
        let nominal = 6 + 997 * 3;
        assert!(
            edges.len() >= nominal * 95 / 100,
            "got {} of {nominal}",
            edges.len()
        );
    }

    #[test]
    fn triad_probability_raises_clustering() {
        let low = holme_kim(4000, 3, 0.0, 13);
        let high = holme_kim(4000, 3, 0.9, 13);
        let a_low = exact::global_clustering(&CsrGraph::from_edges(&low));
        let a_high = exact::global_clustering(&CsrGraph::from_edges(&high));
        assert!(
            a_high > 2.0 * a_low,
            "triad formation should raise clustering: {a_low} vs {a_high}"
        );
        assert!(
            a_high > 0.1,
            "high triad_p should give strong clustering, got {a_high}"
        );
    }

    #[test]
    fn keeps_heavy_tail() {
        let edges = holme_kim(3000, 2, 0.6, 3);
        let stats = DegreeStats::of(&CsrGraph::from_edges(&edges));
        assert!(stats.is_heavy_tailed());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(holme_kim(500, 2, 0.5, 1), holme_kim(500, 2, 0.5, 1));
        assert_ne!(holme_kim(500, 2, 0.5, 1), holme_kim(500, 2, 0.5, 2));
    }

    #[test]
    fn default_backend_is_compact() {
        assert_eq!(
            holme_kim(400, 3, 0.5, 9),
            holme_kim_with_backend(400, 3, 0.5, 9, gps_graph::BackendKind::Compact),
        );
    }

    #[test]
    fn both_backends_realize_the_same_model() {
        // Backends differ in neighbor order, so concrete seeded outputs
        // differ — but each is a valid simple graph of nominal size with
        // comparable clustering (the model parameter being exercised).
        let nominal = 6 + 1997 * 3;
        let mut clustering = vec![];
        for kind in [
            gps_graph::BackendKind::Compact,
            gps_graph::BackendKind::HashMap,
        ] {
            let edges = holme_kim_with_backend(2000, 3, 0.7, 5, kind);
            assert_simple(&edges);
            assert!(edges.len() >= nominal * 95 / 100);
            clustering.push(exact::global_clustering(&CsrGraph::from_edges(&edges)));
        }
        let (a, b) = (clustering[0], clustering[1]);
        assert!(
            (a - b).abs() / a.max(b) < 0.25,
            "clustering should agree across backends: {a} vs {b}"
        );
    }
}
