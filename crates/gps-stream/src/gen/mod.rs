//! Synthetic graph generators — the workload substrate.
//!
//! The paper evaluates on ~50 real graphs from networkrepository.com. Those
//! datasets are not redistributable here, so the experiments run on seeded
//! synthetic graphs whose structural knobs (degree skew, clustering,
//! density) are chosen per stand-in; see `corpus` and DESIGN.md §5. Real
//! edge lists can be dropped in via `gps_graph::io`.
//!
//! Every generator is deterministic in its `seed`, emits a *simple*
//! undirected graph (no self-loops, no duplicates), and returns edges in
//! generation order. Streams are then shuffled by [`crate::permute`].

mod ba;
mod chung_lu;
mod cliques;
mod er;
mod holme_kim;
mod lattice;
mod rmat;
mod ws;

pub use ba::barabasi_albert;
pub use chung_lu::chung_lu;
pub use cliques::collaboration;
pub use er::erdos_renyi;
pub use holme_kim::{holme_kim, holme_kim_with_backend};
pub use lattice::grid;
pub use rmat::{rmat, RmatParams};
pub use ws::watts_strogatz;

use gps_graph::types::Edge;
use gps_graph::{AdjacencyBackend, BackendKind};

/// Deduplicating edge accumulator shared by the generators.
///
/// Duplicate suppression is answered by a growing compact adjacency's own
/// membership check on insert — the same substrate the samplers and the
/// Holme–Kim generator run on — instead of a separate `FxHashSet` of edge
/// keys (the ROADMAP generator-dedup item). The membership predicate
/// ("was this edge new?") is identical and no RNG draw depends on the
/// structure, so seeded generator outputs are unchanged; generators that
/// need topology (degree-indexed draws, membership under rewiring) get it
/// from the same structure for free.
pub(crate) struct EdgeAccumulator {
    seen: AdjacencyBackend<()>,
    edges: Vec<Edge>,
}

impl EdgeAccumulator {
    pub(crate) fn with_capacity(m: usize) -> Self {
        EdgeAccumulator {
            // Node-count hint: a simple graph of m edges touches at most 2m
            // nodes, but generators cluster far below that; m avoids
            // over-reserving while the backend grows on demand.
            seen: AdjacencyBackend::with_capacity(BackendKind::Compact, m, m),
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds the edge if it is new; returns whether it was added.
    pub(crate) fn push(&mut self, edge: Edge) -> bool {
        if self.seen.insert(edge, ()).is_none() {
            self.edges.push(edge);
            true
        } else {
            false
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.edges.len()
    }

    pub(crate) fn into_edges(self) -> Vec<Edge> {
        self.edges
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use gps_graph::types::Edge;

    /// Asserts the list is a simple graph (already guaranteed no self-loops
    /// by `Edge`; checks duplicates).
    pub(crate) fn assert_simple(edges: &[Edge]) {
        let mut keys: Vec<u64> = edges.iter().map(Edge::key).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "duplicate edges in generator output");
    }
}
