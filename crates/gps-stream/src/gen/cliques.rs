//! Overlapping-clique ("collaboration") graphs.
//!
//! Affiliation networks — actors per movie (ca-hollywood-2009), co-authors
//! per paper, products per basket (com-amazon) — are unions of small
//! cliques over a skewed membership distribution. That structure produces
//! the very high global clustering (α ≈ 0.2–0.35) that growth models like
//! Holme–Kim cannot reach, so it is the right stand-in for the paper's
//! collaboration/co-purchase graphs.

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a union of `n_cliques` cliques over `n` nodes.
///
/// Each clique draws its size uniformly from `size_range` and its members
/// from a Zipf-like popularity distribution with exponent `skew`
/// (`w_i ∝ (i + 10)^(-skew)`): node 0 is the most popular "actor".
/// Larger `skew` → heavier-tailed degrees and more clique overlap (which
/// lowers clustering from 1 toward real collaboration levels).
///
/// # Panics
/// Panics if the size range is empty/degenerate (`min < 2`), if `skew` is
/// negative, or if `n` is smaller than the maximum clique size.
pub fn collaboration(
    n: NodeId,
    n_cliques: usize,
    size_range: (usize, usize),
    skew: f64,
    seed: u64,
) -> Vec<Edge> {
    let (min_s, max_s) = size_range;
    assert!(
        min_s >= 2 && max_s >= min_s,
        "clique sizes must be ≥ 2 and ordered"
    );
    assert!(skew >= 0.0, "skew must be nonnegative");
    assert!((n as usize) >= max_s, "need at least max clique size nodes");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Cumulative popularity table for inverse-CDF member sampling.
    let mut cumulative = Vec::with_capacity(n as usize);
    let mut total = 0.0f64;
    for i in 0..n {
        total += (i as f64 + 10.0).powf(-skew);
        cumulative.push(total);
    }
    let draw = |rng: &mut SmallRng| -> NodeId {
        let x = rng.random::<f64>() * total;
        cumulative.partition_point(|&c| c < x) as NodeId
    };

    let avg_edges = (min_s + max_s) * ((min_s + max_s) / 2 - 1) / 4 + 1;
    let mut acc = EdgeAccumulator::with_capacity(n_cliques * avg_edges);
    let mut members: Vec<NodeId> = Vec::with_capacity(max_s);
    for _ in 0..n_cliques {
        let s = rng.random_range(min_s..=max_s);
        members.clear();
        let mut guard = 0;
        while members.len() < s && guard < 100 * s {
            guard += 1;
            let v = draw(&mut rng);
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                acc.push(Edge::new(members[i], members[j]));
            }
        }
    }
    acc.into_edges()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::degrees::DegreeStats;
    use gps_graph::exact;

    #[test]
    fn produces_high_clustering() {
        let edges = collaboration(20_000, 12_000, (3, 7), 0.3, 1);
        assert_simple(&edges);
        let g = CsrGraph::from_edges(&edges);
        let alpha = exact::global_clustering(&g);
        assert!(
            alpha > 0.15,
            "collaboration graphs should cluster strongly, got {alpha}"
        );
    }

    #[test]
    fn skew_produces_heavy_tail() {
        let edges = collaboration(20_000, 10_000, (3, 6), 0.8, 2);
        let stats = DegreeStats::of(&CsrGraph::from_edges(&edges));
        assert!(stats.is_heavy_tailed(), "{stats:?}");
    }

    #[test]
    fn single_clique_is_complete() {
        let edges = collaboration(10, 1, (5, 5), 0.0, 3);
        // One clique of 5 → exactly 10 edges, 10 triangles... C(5,3) = 10.
        assert_eq!(edges.len(), 10);
        let g = CsrGraph::from_edges(&edges);
        assert_eq!(exact::triangle_count(&g), 10);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            collaboration(1000, 500, (3, 6), 0.5, 7),
            collaboration(1000, 500, (3, 6), 0.5, 7)
        );
        assert_ne!(
            collaboration(1000, 500, (3, 6), 0.5, 7),
            collaboration(1000, 500, (3, 6), 0.5, 8)
        );
    }

    #[test]
    #[should_panic(expected = "clique sizes")]
    fn rejects_degenerate_sizes() {
        collaboration(10, 1, (1, 3), 0.5, 0);
    }
}
