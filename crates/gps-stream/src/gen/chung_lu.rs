//! Chung–Lu random graphs with power-law expected degrees.

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a Chung–Lu-style graph: `m` distinct edges whose endpoints are
/// drawn independently with probability proportional to target weights
/// `w_i ∝ (i + i₀)^(-1/(γ-1))`, giving an expected power-law degree
/// distribution with exponent `γ` (conditioned on the edge count).
///
/// Compared to Barabási–Albert this decouples the tail exponent from the
/// growth process and produces a configurable number of degree-1 nodes —
/// closer to citation/patent-style graphs (the paper's cit-Patents).
///
/// # Panics
/// Panics if `gamma <= 2`, `n < 2`, or `m` exceeds `n(n-1)/2`.
pub fn chung_lu(n: NodeId, m: usize, gamma: f64, seed: u64) -> Vec<Edge> {
    assert!(
        gamma > 2.0,
        "power-law exponent must exceed 2 for finite mean"
    );
    assert!(n >= 2);
    let possible = n as u64 * (n as u64 - 1) / 2;
    assert!(m as u64 <= possible, "too many edges requested");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Cumulative weight table for inverse-CDF endpoint sampling.
    let exponent = -1.0 / (gamma - 1.0);
    let offset = 4.0; // i₀ dampens the largest hubs so rejection stays cheap.
    let mut cumulative = Vec::with_capacity(n as usize);
    let mut total = 0.0f64;
    for i in 0..n {
        total += (i as f64 + offset).powf(exponent);
        cumulative.push(total);
    }

    let draw = |rng: &mut SmallRng| -> NodeId {
        let x = rng.random::<f64>() * total;
        cumulative.partition_point(|&c| c < x) as NodeId
    };

    let mut acc = EdgeAccumulator::with_capacity(m);
    let mut stalls = 0usize;
    while acc.len() < m {
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        match Edge::try_new(a, b) {
            Some(e) if acc.push(e) => stalls = 0,
            _ => {
                stalls += 1;
                // With m ≤ n(n-1)/2 a fresh edge always exists, but heavy
                // hubs can make rejection slow near saturation; bail to
                // uniform fill to guarantee termination.
                if stalls > 10_000 {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    if let Some(e) = Edge::try_new(a, b) {
                        acc.push(e);
                    }
                }
            }
        }
    }
    acc.into_edges()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::degrees::DegreeStats;

    #[test]
    fn exact_edge_count_and_simple() {
        let edges = chung_lu(2000, 8000, 2.5, 21);
        assert_eq!(edges.len(), 8000);
        assert_simple(&edges);
    }

    #[test]
    fn heavier_tail_for_smaller_gamma() {
        let heavy = chung_lu(4000, 12000, 2.1, 5);
        let light = chung_lu(4000, 12000, 3.5, 5);
        let max_heavy = DegreeStats::of(&CsrGraph::from_edges(&heavy)).max;
        let max_light = DegreeStats::of(&CsrGraph::from_edges(&light)).max;
        assert!(
            max_heavy > max_light,
            "gamma=2.1 should produce bigger hubs: {max_heavy} vs {max_light}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(chung_lu(300, 900, 2.5, 4), chung_lu(300, 900, 2.5, 4));
        assert_ne!(chung_lu(300, 900, 2.5, 4), chung_lu(300, 900, 2.5, 5));
    }

    #[test]
    #[should_panic(expected = "exceed 2")]
    fn rejects_bad_gamma() {
        chung_lu(10, 5, 1.5, 0);
    }
}
