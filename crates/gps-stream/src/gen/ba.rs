//! Barabási–Albert preferential attachment.

use super::EdgeAccumulator;
use gps_graph::types::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a Barabási–Albert graph: `n` nodes, each new node attaching
/// `m_per_node` edges to existing nodes with probability proportional to
/// their degree.
///
/// Produces the heavy-tailed degree distributions of the paper's social
/// stand-ins (higgs-social-network, soc-youtube, soc-orkut) with low-to-
/// moderate clustering. The seed graph is a `(m_per_node + 1)`-clique.
///
/// # Panics
/// Panics if `n <= m_per_node` or `m_per_node == 0`.
pub fn barabasi_albert(n: NodeId, m_per_node: usize, seed: u64) -> Vec<Edge> {
    assert!(m_per_node >= 1, "need at least one edge per node");
    assert!(
        (n as usize) > m_per_node,
        "need more nodes ({n}) than edges per node ({m_per_node})"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let m0 = m_per_node + 1;
    let expected_edges = m0 * (m0 - 1) / 2 + (n as usize - m0) * m_per_node;
    let mut acc = EdgeAccumulator::with_capacity(expected_edges);

    // `stubs` holds each node once per incident edge; uniform draws from it
    // implement degree-proportional selection exactly.
    let mut stubs: Vec<NodeId> = Vec::with_capacity(expected_edges * 2);

    // Seed clique.
    for a in 0..m0 as NodeId {
        for b in (a + 1)..m0 as NodeId {
            acc.push(Edge::new(a, b));
            stubs.push(a);
            stubs.push(b);
        }
    }

    let mut picked: Vec<NodeId> = Vec::with_capacity(m_per_node);
    for v in m0 as NodeId..n {
        picked.clear();
        // Draw m distinct targets by preferential attachment; rejection on
        // duplicates terminates fast because m_per_node << current nodes.
        while picked.len() < m_per_node {
            let target = stubs[rng.random_range(0..stubs.len())];
            if !picked.contains(&target) {
                picked.push(target);
            }
        }
        for &t in &picked {
            acc.push(Edge::new(v, t));
            stubs.push(v);
            stubs.push(t);
        }
    }
    acc.into_edges()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_simple;
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::degrees::DegreeStats;

    #[test]
    fn edge_count_matches_formula() {
        let n = 500;
        let m = 3;
        let edges = barabasi_albert(n, m, 11);
        let m0 = m + 1;
        assert_eq!(edges.len(), m0 * (m0 - 1) / 2 + (n as usize - m0) * m);
        assert_simple(&edges);
    }

    #[test]
    fn produces_heavy_tailed_degrees() {
        let edges = barabasi_albert(3000, 2, 5);
        let g = CsrGraph::from_edges(&edges);
        let stats = DegreeStats::of(&g);
        assert!(
            stats.is_heavy_tailed(),
            "BA should be heavy-tailed, got max={} median={}",
            stats.max,
            stats.median
        );
        // Every non-seed node has degree >= m.
        assert!(stats.min >= 2);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(barabasi_albert(200, 2, 1), barabasi_albert(200, 2, 1));
        assert_ne!(barabasi_albert(200, 2, 1), barabasi_albert(200, 2, 2));
    }

    #[test]
    fn minimal_configuration() {
        // n = m + 2: the clique plus a single attached node.
        let edges = barabasi_albert(4, 2, 0);
        assert_simple(&edges);
        assert_eq!(edges.len(), 3 + 2);
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_tiny_n() {
        barabasi_albert(2, 2, 0);
    }
}
