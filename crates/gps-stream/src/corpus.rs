//! Named synthetic stand-ins for the paper's evaluation corpus.
//!
//! The paper evaluates on graphs from networkrepository.com (up to 265M
//! edges). Those datasets cannot be bundled, so each graph used in a table
//! or figure gets a *stand-in* generated to match its qualitative profile —
//! degree skew, clustering level, and density — at laptop scale
//! (~10⁵–10⁶ edges at `scale = 1.0`). Experiments preserve the paper's
//! *sampling fractions* `m/|K|`, so relative behaviour (estimation error,
//! convergence, baseline ordering) is comparable; see DESIGN.md §5.
//!
//! Real datasets drop in via [`gps_graph::io::read_edge_list_file`] and the
//! same harness binaries.

use crate::gen::{self, RmatParams};
use gps_graph::types::Edge;

/// Generator recipe for one workload.
#[derive(Clone, Copy, Debug)]
pub enum GenSpec {
    /// Erdős–Rényi `G(n, m)`.
    ErdosRenyi {
        /// node count
        n: u32,
        /// edge count
        m: usize,
    },
    /// Barabási–Albert with `m_per_node` attachments.
    BarabasiAlbert {
        /// node count
        n: u32,
        /// edges added per new node
        m_per_node: usize,
    },
    /// Holme–Kim power-law cluster graph.
    HolmeKim {
        /// node count
        n: u32,
        /// edges added per new node
        m_per_node: usize,
        /// triad-formation probability (dials clustering)
        triad_p: f64,
    },
    /// Chung–Lu with power-law exponent `gamma`.
    ChungLu {
        /// node count
        n: u32,
        /// edge count
        m: usize,
        /// degree-distribution exponent (> 2)
        gamma: f64,
    },
    /// R-MAT with `2^scale` nodes.
    Rmat {
        /// log2 of node count
        scale: u32,
        /// edge count
        m: usize,
        /// quadrant probabilities
        params: RmatParams,
    },
    /// Watts–Strogatz ring with rewiring.
    WattsStrogatz {
        /// node count
        n: u32,
        /// ring degree (even)
        k: usize,
        /// rewiring probability
        beta: f64,
    },
    /// Overlapping-clique collaboration/affiliation graph.
    Collaboration {
        /// node (actor) count
        n: u32,
        /// number of cliques (movies/baskets)
        cliques: usize,
        /// inclusive clique-size range
        size: (usize, usize),
        /// popularity skew (Zipf-like exponent)
        skew: f64,
    },
    /// Grid lattice with diagonal probability.
    Grid {
        /// grid rows
        rows: u32,
        /// grid columns
        cols: u32,
        /// probability of a diagonal per cell
        diag_p: f64,
    },
}

impl GenSpec {
    /// Generates the edge list, linearly scaling the size knobs by `scale`.
    pub fn build(&self, scale: f64, seed: u64) -> Vec<Edge> {
        assert!(scale > 0.0, "scale must be positive");
        let sn = |n: u32| ((n as f64 * scale) as u32).max(8);
        let sm = |m: usize| ((m as f64 * scale) as usize).max(8);
        match *self {
            GenSpec::ErdosRenyi { n, m } => gen::erdos_renyi(sn(n), sm(m), seed),
            GenSpec::BarabasiAlbert { n, m_per_node } => {
                gen::barabasi_albert(sn(n), m_per_node, seed)
            }
            GenSpec::HolmeKim {
                n,
                m_per_node,
                triad_p,
            } => gen::holme_kim(sn(n), m_per_node, triad_p, seed),
            GenSpec::ChungLu { n, m, gamma } => gen::chung_lu(sn(n), sm(m), gamma, seed),
            GenSpec::Rmat {
                scale: s,
                m,
                params,
            } => {
                // Scale node count by adjusting the exponent: each halving of
                // `scale` drops one level. Keep at least 2^10 nodes.
                let adj = (s as f64 + scale.log2()).round().clamp(10.0, 31.0) as u32;
                gen::rmat(adj, sm(m), params, seed)
            }
            GenSpec::WattsStrogatz { n, k, beta } => gen::watts_strogatz(sn(n), k, beta, seed),
            GenSpec::Collaboration {
                n,
                cliques,
                size,
                skew,
            } => gen::collaboration(sn(n), sm(cliques), size, skew, seed),
            GenSpec::Grid { rows, cols, diag_p } => {
                let f = scale.sqrt();
                gen::grid(
                    ((rows as f64 * f) as u32).max(3),
                    ((cols as f64 * f) as u32).max(3),
                    diag_p,
                    seed,
                )
            }
        }
    }
}

/// A named workload: which paper graph it stands in for, and how to build it.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Short name used in tables (e.g. `hollywood-sim`).
    pub name: &'static str,
    /// The paper graph this stands in for (e.g. `ca-hollywood-2009`).
    pub stands_in_for: &'static str,
    /// Qualitative profile being matched.
    pub profile: &'static str,
    /// Generator recipe.
    pub gen: GenSpec,
}

impl WorkloadSpec {
    /// Builds the workload at the given scale with a deterministic per-name
    /// seed derived from `seed`.
    pub fn build(&self, scale: f64, seed: u64) -> Workload {
        // Mix the workload name into the seed so two workloads in the same
        // experiment never share an RNG stream.
        let mut h = 0xcbf29ce484222325u64;
        for b in self.name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        let edges = self.gen.build(scale, seed ^ h);
        Workload { spec: *self, edges }
    }
}

/// A realized workload: the spec plus its generated edges.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The spec this was built from.
    pub spec: WorkloadSpec,
    /// Generated edge list (generation order; shuffle before streaming).
    pub edges: Vec<Edge>,
}

impl Workload {
    /// Short name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// All distinct stand-ins used anywhere in the evaluation.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        // High-clustering collaboration graph: ca-hollywood-2009 (α ≈ 0.31).
        WorkloadSpec {
            name: "hollywood-sim",
            stands_in_for: "ca-hollywood-2009",
            profile: "heavy-tail, very high clustering (overlapping casts)",
            gen: GenSpec::Collaboration {
                n: 36_000,
                cliques: 9_600,
                size: (4, 10),
                skew: 0.2,
            },
        },
        // Co-purchase graph: com-amazon (α ≈ 0.205, mild skew).
        WorkloadSpec {
            name: "amazon-sim",
            stands_in_for: "com-amazon",
            profile: "mild tail, high clustering (co-purchase baskets)",
            gen: GenSpec::Collaboration {
                n: 50_000,
                cliques: 28_000,
                size: (3, 6),
                skew: 0.3,
            },
        },
        // Retweet/mention graph: higgs-social-network (α ≈ 0.009).
        WorkloadSpec {
            name: "higgs-sim",
            stands_in_for: "higgs-social-network",
            profile: "heavy-tail, very low clustering",
            gen: GenSpec::HolmeKim {
                n: 110_000,
                m_per_node: 2,
                triad_p: 0.10,
            },
        },
        // Blog/social graph: soc-livejournal (α ≈ 0.139).
        WorkloadSpec {
            name: "livejournal-sim",
            stands_in_for: "soc-livejournal",
            profile: "heavy-tail, moderate clustering",
            gen: GenSpec::HolmeKim {
                n: 75_000,
                m_per_node: 3,
                triad_p: 0.45,
            },
        },
        // Dense social graph: soc-orkut (α ≈ 0.041).
        WorkloadSpec {
            name: "orkut-sim",
            stands_in_for: "soc-orkut",
            profile: "dense, heavy-tail, low clustering",
            gen: GenSpec::HolmeKim {
                n: 55_000,
                m_per_node: 4,
                triad_p: 0.15,
            },
        },
        // Follower graph: soc-twitter-2010 (α ≈ 0.028, extreme skew).
        WorkloadSpec {
            name: "twitter-sim",
            stands_in_for: "soc-twitter-2010",
            profile: "extreme skew, low clustering",
            gen: GenSpec::Rmat {
                scale: 17,
                m: 260_000,
                params: RmatParams::web(),
            },
        },
        // Subscription graph: soc-youtube-snap (α ≈ 0.006).
        WorkloadSpec {
            name: "youtube-sim",
            stands_in_for: "soc-youtube-snap",
            profile: "heavy-tail, very low clustering",
            gen: GenSpec::HolmeKim {
                n: 120_000,
                m_per_node: 2,
                triad_p: 0.08,
            },
        },
        // Facebook network: socfb-Penn94 (α ≈ 0.098, dense).
        WorkloadSpec {
            name: "penn94-sim",
            stands_in_for: "socfb-Penn94",
            profile: "dense, moderate clustering",
            gen: GenSpec::HolmeKim {
                n: 20_000,
                m_per_node: 10,
                triad_p: 0.35,
            },
        },
        // Facebook network: socfb-Texas84 (α ≈ 0.100, dense).
        WorkloadSpec {
            name: "texas84-sim",
            stands_in_for: "socfb-Texas84",
            profile: "dense, moderate clustering",
            gen: GenSpec::HolmeKim {
                n: 18_000,
                m_per_node: 11,
                triad_p: 0.35,
            },
        },
        // Internet topology: tech-as-skitter (α ≈ 0.005).
        WorkloadSpec {
            name: "skitter-sim",
            stands_in_for: "tech-as-skitter",
            profile: "extreme skew, very low clustering",
            gen: GenSpec::Rmat {
                scale: 16,
                m: 220_000,
                params: RmatParams::web(),
            },
        },
        // Web graph: web-google (α ≈ 0.055).
        WorkloadSpec {
            name: "google-sim",
            stands_in_for: "web-google",
            profile: "skewed, moderate local clustering",
            gen: GenSpec::HolmeKim {
                n: 70_000,
                m_per_node: 3,
                triad_p: 0.25,
            },
        },
        // Web graph: web-BerkStan.
        WorkloadSpec {
            name: "berkstan-sim",
            stands_in_for: "web-BerkStan",
            profile: "skewed web graph",
            gen: GenSpec::Rmat {
                scale: 16,
                m: 210_000,
                params: RmatParams::social(),
            },
        },
        // Citation graph: cit-Patents (α ≈ 0.067, low clustering).
        WorkloadSpec {
            name: "patents-sim",
            stands_in_for: "cit-Patents",
            profile: "moderate skew, low clustering",
            gen: GenSpec::ChungLu {
                n: 140_000,
                m: 280_000,
                gamma: 2.2,
            },
        },
        // Road network: infra-roadNet-CA (near-planar, few triangles).
        WorkloadSpec {
            name: "roadnet-sim",
            stands_in_for: "infra-roadNet-CA",
            profile: "near-constant degree, triangle-poor",
            gen: GenSpec::Grid {
                rows: 330,
                cols: 320,
                diag_p: 0.03,
            },
        },
        // Low-clustering control (not in the paper's tables; used by tests
        // and ablations).
        WorkloadSpec {
            name: "er-control",
            stands_in_for: "(control)",
            profile: "Poisson degrees, vanishing clustering",
            gen: GenSpec::ErdosRenyi {
                n: 80_000,
                m: 240_000,
            },
        },
        // Small-world control with high clustering and flat degrees.
        WorkloadSpec {
            name: "smallworld-control",
            stands_in_for: "(control)",
            profile: "flat degrees, high clustering",
            gen: GenSpec::WattsStrogatz {
                n: 60_000,
                k: 8,
                beta: 0.1,
            },
        },
    ]
}

/// Looks up a spec by its short name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// The 11 graphs of paper Table 1, in the paper's row order.
pub fn table1() -> Vec<WorkloadSpec> {
    [
        "hollywood-sim",
        "amazon-sim",
        "higgs-sim",
        "livejournal-sim",
        "orkut-sim",
        "twitter-sim",
        "youtube-sim",
        "penn94-sim",
        "texas84-sim",
        "skitter-sim",
        "google-sim",
    ]
    .iter()
    .map(|n| by_name(n).unwrap())
    .collect()
}

/// The 3 graphs of paper Table 2.
pub fn table2() -> Vec<WorkloadSpec> {
    ["patents-sim", "higgs-sim", "roadnet-sim"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect()
}

/// The 4 graphs of paper Table 3.
pub fn table3() -> Vec<WorkloadSpec> {
    ["hollywood-sim", "skitter-sim", "roadnet-sim", "youtube-sim"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect()
}

/// The 12 panels of paper Figures 1–2.
pub fn figure_panels() -> Vec<WorkloadSpec> {
    [
        "texas84-sim",
        "penn94-sim",
        "twitter-sim",
        "youtube-sim",
        "orkut-sim",
        "livejournal-sim",
        "higgs-sim",
        "patents-sim",
        "berkstan-sim",
        "amazon-sim",
        "skitter-sim",
        "google-sim",
    ]
    .iter()
    .map(|n| by_name(n).unwrap())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::csr::CsrGraph;
    use gps_graph::exact;

    #[test]
    fn all_specs_have_unique_names() {
        let specs = all();
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn experiment_sets_resolve() {
        assert_eq!(table1().len(), 11);
        assert_eq!(table2().len(), 3);
        assert_eq!(table3().len(), 4);
        assert_eq!(figure_panels().len(), 12);
        assert!(by_name("no-such-graph").is_none());
    }

    #[test]
    fn small_scale_builds_are_simple_and_seeded() {
        for spec in all() {
            let w1 = spec.build(0.02, 42);
            let w2 = spec.build(0.02, 42);
            assert_eq!(w1.edges, w2.edges, "{} not deterministic", spec.name);
            assert!(w1.num_edges() > 0, "{} generated no edges", spec.name);
            let mut keys: Vec<u64> = w1.edges.iter().map(|e| e.key()).collect();
            keys.sort_unstable();
            let n = keys.len();
            keys.dedup();
            assert_eq!(n, keys.len(), "{} has duplicate edges", spec.name);
        }
    }

    #[test]
    fn clustering_profiles_are_ordered_as_designed() {
        // At test scale, hollywood-sim must cluster far above higgs-sim.
        let hollywood = by_name("hollywood-sim").unwrap().build(0.05, 7);
        let higgs = by_name("higgs-sim").unwrap().build(0.05, 7);
        let a_h = exact::global_clustering(&CsrGraph::from_edges(&hollywood.edges));
        let a_g = exact::global_clustering(&CsrGraph::from_edges(&higgs.edges));
        assert!(
            a_h > 3.0 * a_g,
            "hollywood {a_h} should cluster >> higgs {a_g}"
        );
    }

    #[test]
    fn roadnet_is_triangle_poor() {
        let road = by_name("roadnet-sim").unwrap().build(0.05, 9);
        let g = CsrGraph::from_edges(&road.edges);
        let t = exact::triangle_count(&g);
        // Few triangles, but nonzero thanks to diagonal streets.
        assert!(t > 0);
        assert!((t as f64) < 0.05 * g.num_edges() as f64);
    }

    #[test]
    fn different_workloads_use_different_streams() {
        let a = by_name("higgs-sim").unwrap().build(0.02, 1);
        let b = by_name("youtube-sim").unwrap().build(0.02, 1);
        assert_ne!(a.edges, b.edges);
    }
}
