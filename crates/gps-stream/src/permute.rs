//! Seeded random permutation of edge lists.
//!
//! The paper (§6): "We generate the graph stream by randomly permuting the
//! set of edges in each graph." Seeding makes whole experiments — including
//! the paper's requirement that post-stream and in-stream estimation consume
//! *identical* streams — exactly reproducible.

use gps_graph::types::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Returns a freshly shuffled copy of `edges` (Fisher–Yates, seeded).
pub fn permuted(edges: &[Edge], seed: u64) -> Vec<Edge> {
    let mut out = edges.to_vec();
    shuffle_in_place(&mut out, seed);
    out
}

/// Fisher–Yates shuffle in place with a seeded RNG.
pub fn shuffle_in_place(edges: &mut [Edge], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..edges.len()).rev() {
        let j = rng.random_range(0..=i);
        edges.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1)).collect()
    }

    #[test]
    fn permutation_preserves_multiset() {
        let input = edges(100);
        let mut out = permuted(&input, 42);
        out.sort();
        let mut expect = input.clone();
        expect.sort();
        assert_eq!(out, expect);
    }

    #[test]
    fn same_seed_same_order() {
        let input = edges(50);
        assert_eq!(permuted(&input, 7), permuted(&input, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let input = edges(50);
        assert_ne!(permuted(&input, 1), permuted(&input, 2));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(permuted(&[], 0).is_empty());
        let one = vec![Edge::new(0, 1)];
        assert_eq!(permuted(&one, 0), one);
    }
}
