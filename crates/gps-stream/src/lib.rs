//! Edge-stream substrate for the `graph-priority-sampling` workspace.
//!
//! The paper's graph-stream model presents a graph as a sequence of edges in
//! arbitrary order, each processed exactly once. This crate provides:
//!
//! - [`stream`]: adapters for treating edge collections as streams, with
//!   checkpoint scheduling for the "estimates vs. time" experiments.
//! - [`permute`]: seeded Fisher–Yates permutation — the paper generates each
//!   stream "by randomly permuting the set of edges in each graph" (§6).
//! - [`gen`]: synthetic workload generators (Erdős–Rényi, Barabási–Albert,
//!   Holme–Kim, Chung–Lu, R-MAT, Watts–Strogatz, grid lattices). These are
//!   the substitution for the paper's networkrepository.com corpus; see
//!   DESIGN.md §5 for the substitution argument.
//! - [`corpus`]: named stand-ins for the specific graphs used in the paper's
//!   tables and figures, at configurable scale.
//! - [`file_stream`]: lazy single-pass edge streaming from disk, for graphs
//!   that do not fit in memory (the streaming model's raison d'être).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod file_stream;
pub mod gen;
pub mod permute;
pub mod stream;

pub use corpus::{Workload, WorkloadSpec};
pub use file_stream::EdgeFileStream;
pub use permute::permuted;
pub use stream::{batched, Batched, Checkpoints};
