//! Stream adapters and checkpoint scheduling.
//!
//! An edge stream in this workspace is simply an `Iterator<Item = Edge>`;
//! samplers consume edges one at a time and never look ahead, matching the
//! paper's single-pass model. This module adds the scheduling helpers the
//! experiments need: [`Checkpoints`] picks the stream positions at which the
//! "vs. time" experiments (paper Figure 3, Table 3) compare estimates to
//! exact counts.

use gps_graph::types::Edge;

/// A set of stream positions (1-based edge counts) at which to snapshot
/// estimates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoints {
    positions: Vec<usize>,
}

impl Checkpoints {
    /// `count` checkpoints evenly spaced over a stream of `stream_len` edges,
    /// ending exactly at `stream_len`.
    pub fn linear(stream_len: usize, count: usize) -> Self {
        assert!(count > 0, "need at least one checkpoint");
        let positions = (1..=count)
            .map(|i| (stream_len as u128 * i as u128 / count as u128) as usize)
            .filter(|&p| p > 0)
            .collect::<Vec<_>>();
        let mut dedup = positions;
        dedup.dedup();
        Checkpoints { positions: dedup }
    }

    /// Geometrically spaced checkpoints from `start` to `stream_len`
    /// (inclusive), multiplying by `factor` (> 1) each step. Used for
    /// sample-size sweeps plotted on log axes (paper Figure 2).
    pub fn geometric(start: usize, stream_len: usize, factor: f64) -> Self {
        assert!(factor > 1.0, "factor must exceed 1");
        assert!(start > 0, "start must be positive");
        let mut positions = vec![];
        let mut x = start as f64;
        while (x as usize) < stream_len {
            positions.push(x as usize);
            x *= factor;
        }
        positions.push(stream_len);
        positions.dedup();
        Checkpoints { positions }
    }

    /// Explicit positions (must be strictly increasing).
    pub fn explicit(positions: Vec<usize>) -> Self {
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be increasing"
        );
        Checkpoints { positions }
    }

    /// The checkpoint positions.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Streams `edges` through `on_edge`, invoking `at_checkpoint(t)` after
    /// the `t`-th edge whenever `t` is a checkpoint.
    pub fn drive<I, F, G>(&self, edges: I, mut on_edge: F, mut at_checkpoint: G)
    where
        I: IntoIterator<Item = Edge>,
        F: FnMut(Edge),
        G: FnMut(usize),
    {
        let mut next = 0usize;
        for (idx, edge) in edges.into_iter().enumerate() {
            on_edge(edge);
            let t = idx + 1;
            while next < self.positions.len() && self.positions[next] == t {
                at_checkpoint(t);
                next += 1;
            }
        }
    }
}

/// Groups an edge stream into fixed-size batches — the feed unit of
/// `gps-engine`'s sharded ingest (one channel send per batch amortizes
/// synchronization over `size` edges). The final batch holds the
/// remainder and may be shorter; no batch is empty.
///
/// ```
/// use gps_graph::Edge;
/// use gps_stream::batched;
///
/// let edges: Vec<Edge> = (0..10).map(|i| Edge::new(i, i + 1)).collect();
/// let batches: Vec<Vec<Edge>> = batched(edges, 4).collect();
/// assert_eq!(batches.len(), 3);
/// assert_eq!(batches[0].len(), 4);
/// assert_eq!(batches[2].len(), 2);
/// ```
///
/// # Panics
/// Panics if `size == 0`.
pub fn batched<I>(edges: I, size: usize) -> Batched<I::IntoIter>
where
    I: IntoIterator<Item = Edge>,
{
    assert!(size > 0, "batch size must be positive");
    Batched {
        inner: edges.into_iter(),
        size,
    }
}

/// Iterator returned by [`batched`].
#[derive(Clone, Debug)]
pub struct Batched<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator<Item = Edge>> Iterator for Batched<I> {
    type Item = Vec<Edge>;

    fn next(&mut self) -> Option<Vec<Edge>> {
        let mut batch = Vec::with_capacity(self.size);
        while batch.len() < self.size {
            match self.inner.next() {
                Some(e) => batch.push(e),
                None => break,
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

/// Counts edges and distinct nodes flowing through a stream, without
/// buffering it. Wrap any edge iterator to get stream-side statistics.
#[derive(Debug, Default)]
pub struct StreamMeter {
    edges: usize,
    nodes: gps_graph::FxHashSet<gps_graph::NodeId>,
}

impl StreamMeter {
    /// New, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one edge.
    pub fn observe(&mut self, e: Edge) {
        self.edges += 1;
        self.nodes.insert(e.u());
        self.nodes.insert(e.v());
    }

    /// Edges observed so far.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Distinct nodes observed so far.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_checkpoints_end_at_stream_len() {
        let c = Checkpoints::linear(100, 4);
        assert_eq!(c.positions(), &[25, 50, 75, 100]);
        let c = Checkpoints::linear(7, 3);
        assert_eq!(*c.positions().last().unwrap(), 7);
    }

    #[test]
    fn geometric_checkpoints_grow_and_terminate() {
        let c = Checkpoints::geometric(10, 1000, 10.0);
        assert_eq!(c.positions(), &[10, 100, 1000]);
        let c = Checkpoints::geometric(10, 10, 2.0);
        assert_eq!(c.positions(), &[10]);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn explicit_rejects_unsorted() {
        Checkpoints::explicit(vec![5, 3]);
    }

    #[test]
    fn drive_fires_checkpoints_in_order() {
        let edges: Vec<Edge> = (0..10).map(|i| Edge::new(i, i + 1)).collect();
        let c = Checkpoints::explicit(vec![3, 7, 10]);
        let mut seen_edges = 0;
        let mut fired = vec![];
        c.drive(edges, |_| seen_edges += 1, |t| fired.push(t));
        assert_eq!(seen_edges, 10);
        assert_eq!(fired, vec![3, 7, 10]);
    }

    #[test]
    fn drive_ignores_checkpoints_past_stream_end() {
        let edges: Vec<Edge> = (0..5).map(|i| Edge::new(i, i + 1)).collect();
        let c = Checkpoints::explicit(vec![2, 9]);
        let mut fired = vec![];
        c.drive(edges, |_| {}, |t| fired.push(t));
        assert_eq!(fired, vec![2]);
    }

    #[test]
    fn batched_covers_the_stream_in_order() {
        let edges: Vec<Edge> = (0..23).map(|i| Edge::new(i, i + 1)).collect();
        let batches: Vec<Vec<Edge>> = batched(edges.clone(), 5).collect();
        assert_eq!(batches.len(), 5);
        assert!(batches[..4].iter().all(|b| b.len() == 5));
        assert_eq!(batches[4].len(), 3);
        let flat: Vec<Edge> = batches.into_iter().flatten().collect();
        assert_eq!(flat, edges, "batching must preserve stream order");
        // Exact multiple: no trailing empty batch.
        assert_eq!(batched(edges, 23).count(), 1);
        assert_eq!(batched(Vec::<Edge>::new(), 4).count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn batched_rejects_zero_size() {
        let _ = batched(Vec::<Edge>::new(), 0);
    }

    #[test]
    fn meter_counts_nodes_and_edges() {
        let mut m = StreamMeter::new();
        m.observe(Edge::new(0, 1));
        m.observe(Edge::new(1, 2));
        m.observe(Edge::new(0, 2));
        assert_eq!(m.edges(), 3);
        assert_eq!(m.nodes(), 3);
    }
}
