//! Property-based tests for the graph substrate.

use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::incremental::IncrementalCounter;
use gps_graph::io;
use gps_graph::types::{Edge, NodeId};
use gps_graph::AdjacencyMap;
use proptest::prelude::*;

/// Random small simple-graph edge list: up to `max_n` nodes, deduplicated.
fn arb_edges(max_n: NodeId, max_m: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m).prop_map(|pairs| {
        let raw: Vec<Edge> = pairs
            .into_iter()
            .filter_map(|(a, b)| Edge::try_new(a, b))
            .collect();
        io::simplify(&raw)
    })
}

proptest! {
    #[test]
    fn csr_triangles_match_brute_force(edges in arb_edges(24, 120)) {
        let g = CsrGraph::from_edges(&edges);
        prop_assert_eq!(exact::triangle_count(&g), exact::brute_force_triangle_count(&g));
    }

    #[test]
    fn csr_edge_count_matches_input(edges in arb_edges(64, 200)) {
        let g = CsrGraph::from_edges(&edges);
        prop_assert_eq!(g.num_edges(), edges.len());
        // Every input edge is present; no others.
        for e in &edges {
            prop_assert!(g.has_edge(e.u(), e.v()));
        }
        prop_assert_eq!(g.edges().count(), edges.len());
    }

    #[test]
    fn triangle_enumeration_agrees_with_count(edges in arb_edges(20, 80)) {
        let g = CsrGraph::from_edges(&edges);
        let mut n = 0u64;
        exact::for_each_triangle(&g, |a, b, c| {
            n += 1;
            // Every reported triple is a real triangle.
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
        });
        prop_assert_eq!(n, exact::triangle_count(&g));
    }

    #[test]
    fn wedge_count_matches_naive(edges in arb_edges(32, 150)) {
        let g = CsrGraph::from_edges(&edges);
        // Naive: for each node, count unordered neighbor pairs.
        let mut naive = 0u128;
        for v in 0..g.num_nodes() as NodeId {
            let d = g.degree(v) as u128;
            naive += d * d.saturating_sub(1) / 2;
        }
        prop_assert_eq!(exact::wedge_count(&g), naive);
    }

    #[test]
    fn incremental_matches_batch_at_every_prefix(edges in arb_edges(20, 60)) {
        let mut inc = IncrementalCounter::new();
        for (i, &e) in edges.iter().enumerate() {
            inc.insert(e);
            let csr = CsrGraph::from_edges(&edges[..=i]);
            prop_assert_eq!(inc.triangles(), exact::triangle_count(&csr));
            prop_assert_eq!(inc.wedges(), exact::wedge_count(&csr));
        }
    }

    #[test]
    fn incremental_removal_in_random_order_reaches_zero(
        edges in arb_edges(16, 40),
        seed in any::<u64>(),
    ) {
        let mut inc = IncrementalCounter::new();
        for &e in &edges {
            inc.insert(e);
        }
        // Deterministic pseudo-random removal order from the seed.
        let mut order = edges.clone();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for &e in &order {
            prop_assert!(inc.remove(e));
        }
        prop_assert_eq!(inc.triangles(), 0);
        prop_assert_eq!(inc.wedges(), 0);
        prop_assert_eq!(inc.num_edges(), 0);
    }

    #[test]
    fn adjacency_insert_remove_is_consistent(edges in arb_edges(32, 100)) {
        let mut g: AdjacencyMap<u32> = AdjacencyMap::new();
        for (i, &e) in edges.iter().enumerate() {
            prop_assert_eq!(g.insert(e, i as u32), None);
        }
        prop_assert_eq!(g.num_edges(), edges.len());
        // Sum of degrees is twice the number of edges.
        let deg_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * edges.len());
        for (i, &e) in edges.iter().enumerate() {
            prop_assert_eq!(g.get(e), Some(i as u32));
            prop_assert_eq!(g.remove(e), Some(i as u32));
        }
        prop_assert!(g.is_empty());
        prop_assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn common_neighbor_count_matches_csr_intersection(edges in arb_edges(24, 100)) {
        let mut adj: AdjacencyMap<()> = AdjacencyMap::new();
        for &e in &edges {
            adj.insert(e, ());
        }
        let csr = CsrGraph::from_edges(&edges);
        for &e in edges.iter().take(20) {
            prop_assert_eq!(
                adj.common_neighbor_count(e.u(), e.v()) as u64,
                exact::triangles_of_edge(&csr, e.u(), e.v())
            );
        }
    }

    #[test]
    fn edge_list_io_round_trips(edges in arb_edges(64, 200)) {
        let mut buf = Vec::new();
        io::write_edge_list(&mut buf, &edges).unwrap();
        let back = io::read_edge_list(buf.as_slice(), io::ReadOptions::default()).unwrap();
        // Node ids are relabeled in first-seen order; the *shape* must be
        // identical: same edge count and same exact triangle count.
        prop_assert_eq!(back.len(), edges.len());
        let g1 = CsrGraph::from_edges(&edges);
        let g2 = CsrGraph::from_edges(&back);
        prop_assert_eq!(exact::triangle_count(&g1), exact::triangle_count(&g2));
        prop_assert_eq!(exact::wedge_count(&g1), exact::wedge_count(&g2));
    }
}
