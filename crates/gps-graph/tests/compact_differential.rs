//! Differential property tests: [`CompactAdjacency`] against the
//! [`AdjacencyMap`] oracle under random edit sequences.
//!
//! The compact backend replaces the reservoir's adjacency store, so any
//! observable divergence from the old map is a sampler-corrupting bug. Every
//! property drives both structures through the same operations and compares
//! every return value plus full observable state (degrees, neighbor sets,
//! edge sets, common-neighbor enumeration with value orientation).

use gps_graph::types::{Edge, NodeId};
use gps_graph::{AdjacencyMap, CompactAdjacency};
use proptest::prelude::*;

/// A random edit operation over a small node universe.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(Edge, u32),
    Remove(Edge),
    Set(Edge, u32),
}

/// Strategy: a sequence of ops over `max_n` nodes. Insert is weighted
/// heaviest so graphs actually grow; remove/set target the same universe so
/// they hit both present and absent edges.
fn arb_ops(max_n: NodeId, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..6, 0..max_n, 0..max_n, any::<u32>()), 0..max_len).prop_map(|raw| {
        raw.into_iter()
            .filter_map(|(kind, a, b, val)| {
                let edge = Edge::try_new(a, b)?;
                Some(match kind {
                    0..=2 => Op::Insert(edge, val),
                    3 | 4 => Op::Remove(edge),
                    _ => Op::Set(edge, val),
                })
            })
            .collect()
    })
}

/// Asserts full observable equivalence of the two structures.
fn assert_equivalent(compact: &CompactAdjacency<u32>, oracle: &AdjacencyMap<u32>, max_n: NodeId) {
    assert_eq!(compact.num_edges(), oracle.num_edges());
    assert_eq!(compact.num_nodes(), oracle.num_nodes());
    assert_eq!(compact.is_empty(), oracle.is_empty());
    assert_eq!(compact.node_set(), oracle.node_set());

    let mut ce: Vec<(Edge, u32)> = compact.edges().collect();
    let mut oe: Vec<(Edge, u32)> = oracle.edges().collect();
    ce.sort_unstable();
    oe.sort_unstable();
    assert_eq!(ce, oe, "edge sets diverged");

    for node in 0..max_n {
        assert_eq!(compact.degree(node), oracle.degree(node), "degree({node})");
        let mut cn: Vec<(NodeId, u32)> = compact.neighbors(node).collect();
        let mut on: Vec<(NodeId, u32)> = oracle.neighbors(node).collect();
        cn.sort_unstable();
        on.sort_unstable();
        assert_eq!(cn, on, "neighbors({node})");
    }

    // Common-neighbor enumeration must agree as a set, including the value
    // orientation (first value = edge to the first argument).
    for u in 0..max_n {
        for v in (u + 1)..max_n {
            let mut cc: Vec<(NodeId, u32, u32)> = vec![];
            compact.for_each_common_neighbor(u, v, |w, vu, vv| cc.push((w, vu, vv)));
            let mut oc: Vec<(NodeId, u32, u32)> = vec![];
            oracle.for_each_common_neighbor(u, v, |w, vu, vv| oc.push((w, vu, vv)));
            cc.sort_unstable();
            oc.sort_unstable();
            assert_eq!(cc, oc, "common neighbors of ({u}, {v})");
            assert_eq!(
                compact.common_neighbor_count(u, v),
                oracle.common_neighbor_count(u, v)
            );
            assert_eq!(
                compact.triad_counts(u, v),
                oracle.triad_counts(u, v),
                "triad_counts({u}, {v})"
            );
            assert_eq!(
                compact.wedge_closure_counts(u, v),
                oracle.wedge_closure_counts(u, v),
                "wedge_closure_counts({u}, {v})"
            );
        }
    }
}

proptest! {
    #[test]
    fn random_edit_sequences_match_oracle(ops in arb_ops(16, 200)) {
        let mut compact: CompactAdjacency<u32> = CompactAdjacency::new();
        let mut oracle: AdjacencyMap<u32> = AdjacencyMap::new();
        for &op in &ops {
            match op {
                Op::Insert(e, v) => {
                    prop_assert_eq!(compact.insert(e, v), oracle.insert(e, v), "insert {}", e);
                }
                Op::Remove(e) => {
                    prop_assert_eq!(compact.remove(e), oracle.remove(e), "remove {}", e);
                }
                Op::Set(e, v) => {
                    prop_assert_eq!(compact.set(e, v), oracle.set(e, v), "set {}", e);
                }
            }
            prop_assert_eq!(compact.num_edges(), oracle.num_edges());
            prop_assert_eq!(compact.num_nodes(), oracle.num_nodes());
            for probe in [Edge::new(0, 1), Edge::new(2, 9), Edge::new(7, 15)] {
                prop_assert_eq!(compact.get(probe), oracle.get(probe));
                prop_assert_eq!(compact.contains(probe), oracle.contains(probe));
            }
        }
        assert_equivalent(&compact, &oracle, 16);
    }

    #[test]
    fn dense_universe_exercises_spill_and_hash_probe(ops in arb_ops(8, 400)) {
        // 8 nodes, up to 28 edges: degrees reach 7, crossing the inline→spill
        // boundary many times as edges churn.
        let mut compact: CompactAdjacency<u32> = CompactAdjacency::new();
        let mut oracle: AdjacencyMap<u32> = AdjacencyMap::new();
        for &op in &ops {
            match op {
                Op::Insert(e, v) => {
                    prop_assert_eq!(compact.insert(e, v), oracle.insert(e, v));
                }
                Op::Remove(e) => {
                    prop_assert_eq!(compact.remove(e), oracle.remove(e));
                }
                Op::Set(e, v) => {
                    prop_assert_eq!(compact.set(e, v), oracle.set(e, v));
                }
            }
        }
        assert_equivalent(&compact, &oracle, 8);
    }

    #[test]
    fn hub_graphs_hit_every_probe_strategy(
        spokes in 1u32..200,
        removals in prop::collection::vec(1u32..200, 0..60),
    ) {
        // Star around node 0 with a rim edge per spoke pair: hub degree
        // crosses both the spill classes and LINEAR_PROBE_MAX, so the
        // common-neighbor kernel runs its hash-probe arm against the oracle.
        let mut compact: CompactAdjacency<u32> = CompactAdjacency::new();
        let mut oracle: AdjacencyMap<u32> = AdjacencyMap::new();
        let hub = 1000;
        for s in 1..=spokes {
            let e = Edge::new(hub, s);
            compact.insert(e, s);
            oracle.insert(e, s);
            if s > 1 {
                let rim = Edge::new(s - 1, s);
                compact.insert(rim, 500 + s);
                oracle.insert(rim, 500 + s);
            }
        }
        // A second, smaller hub sharing every third spoke: hub–hub
        // intersections exercise the lopsided sorted-vs-sorted kernel arm.
        let hub2 = 2000;
        compact.insert(Edge::new(hub, hub2), 7);
        oracle.insert(Edge::new(hub, hub2), 7);
        for s in (1..=spokes).step_by(3) {
            let e = Edge::new(hub2, s);
            compact.insert(e, 9000 + s);
            oracle.insert(e, 9000 + s);
        }
        let mut ch: Vec<(NodeId, u32, u32)> = vec![];
        compact.for_each_common_neighbor(hub, hub2, |w, a, b| ch.push((w, a, b)));
        let mut oh: Vec<(NodeId, u32, u32)> = vec![];
        oracle.for_each_common_neighbor(hub, hub2, |w, a, b| oh.push((w, a, b)));
        ch.sort_unstable();
        oh.sort_unstable();
        prop_assert_eq!(ch, oh, "hub-hub common neighbors");
        prop_assert_eq!(
            compact.triad_counts(hub, hub2),
            oracle.triad_counts(hub, hub2)
        );
        for &r in &removals {
            let r = (r % spokes) + 1;
            let e = Edge::new(hub, r);
            prop_assert_eq!(compact.remove(e), oracle.remove(e));
        }
        for s in 1..spokes {
            let (u, v) = (s, s + 1);
            let mut cc: Vec<(NodeId, u32, u32)> = vec![];
            compact.for_each_common_neighbor(u, v, |w, vu, vv| cc.push((w, vu, vv)));
            let mut oc: Vec<(NodeId, u32, u32)> = vec![];
            oracle.for_each_common_neighbor(u, v, |w, vu, vv| oc.push((w, vu, vv)));
            cc.sort_unstable();
            oc.sort_unstable();
            prop_assert_eq!(cc, oc, "common neighbors of rim edge ({}, {})", u, v);
        }
        prop_assert_eq!(compact.degree(hub), oracle.degree(hub));
        prop_assert_eq!(compact.num_edges(), oracle.num_edges());
    }
}

proptest! {
    #[test]
    fn triangle_closure_matches_oracle(ops in arb_ops(12, 250)) {
        let mut compact: CompactAdjacency<u32> = CompactAdjacency::new();
        let mut oracle: AdjacencyMap<u32> = AdjacencyMap::new();
        for &op in &ops {
            match op {
                Op::Insert(e, v) => {
                    compact.insert(e, v);
                    oracle.insert(e, v);
                }
                Op::Remove(e) => {
                    compact.remove(e);
                    oracle.remove(e);
                }
                Op::Set(e, v) => {
                    compact.set(e, v);
                    oracle.set(e, v);
                }
            }
        }
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                prop_assert_eq!(
                    compact.triangle_closure_counts(u, v),
                    oracle.triangle_closure_counts(u, v),
                    "triangle_closure_counts({}, {})", u, v
                );
            }
        }
    }
}
