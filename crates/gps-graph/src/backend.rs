//! Runtime-selectable adjacency backend for the sampling layers.
//!
//! [`AdjacencyBackend`] wraps the two adjacency representations behind one
//! API: the cache-friendly [`CompactAdjacency`] (the default, and the one
//! production code should use) and the original nested-hash
//! [`AdjacencyMap`], kept as a behavioral oracle for differential tests and
//! as the baseline arm of `bench_baseline`-style before/after measurements.
//!
//! The API is deliberately **sampler-agnostic**: besides the hinted
//! insert/evict path `GpsSampler` uses, it exposes plain insert/remove,
//! neighbor iteration ([`AdjacencyBackend::for_each_neighbor`],
//! [`AdjacencyBackend::neighbor_at`]) and the common-neighbor kernel, so
//! the `gps-baselines` estimators (TRIEST, MASCOT, JHA, uniform reservoir)
//! and the `gps-stream` generators run on the same substrate as GPS and
//! backend choice stays a pure performance axis (see
//! `gps-baselines/tests/backend_equivalence.rs`).
//!
//! A two-variant enum — rather than a generic parameter — keeps
//! `gps-core`'s `SampleView` non-generic, which matters because weight
//! functions and motif detectors close over `&SampleView<'_>` in plain
//! (non-generic) closures throughout the workspace. The per-call `match` on
//! the discriminant is perfectly predicted and disappears next to the work
//! each method does.

use crate::adjacency::AdjacencyMap;
use crate::compact::{CompactAdjacency, EdgeHints};
use crate::hash::FxHashSet;
use crate::types::{Edge, NodeId};

/// Which adjacency representation an [`AdjacencyBackend`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Interned, slab-backed [`CompactAdjacency`] (default; fast path).
    Compact,
    /// Nested-hash [`AdjacencyMap`] (differential oracle / perf baseline).
    HashMap,
}

/// An adjacency store that is either compact or hash-map backed.
///
/// The variants differ in inline size (the compact store carries its free
/// lists and filter headers by value), but exactly one store exists per
/// sampler, so boxing the large variant would only add a pointer chase to
/// every hot-path call.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum AdjacencyBackend<V: Copy> {
    /// Cache-friendly interned backend.
    Compact(CompactAdjacency<V>),
    /// Original nested-hash backend.
    Map(AdjacencyMap<V>),
}

impl<V: Copy> Default for AdjacencyBackend<V> {
    fn default() -> Self {
        AdjacencyBackend::Compact(CompactAdjacency::new())
    }
}

impl<V: Copy> AdjacencyBackend<V> {
    /// Creates an empty store of the given kind. The compact store is
    /// pre-sized for roughly `nodes` distinct nodes and `edges` edges; the
    /// hash-map store is deliberately constructed **unsized**, exactly as
    /// the pre-refactor sampler built it (pre-sizing is part of the
    /// refactor this baseline exists to measure — see `bench_baseline`).
    /// Callers who want a pre-sized map can build one with
    /// [`AdjacencyMap::with_node_capacity`] directly.
    pub fn with_capacity(kind: BackendKind, nodes: usize, edges: usize) -> Self {
        match kind {
            BackendKind::Compact => {
                AdjacencyBackend::Compact(CompactAdjacency::with_capacity(nodes, edges))
            }
            BackendKind::HashMap => AdjacencyBackend::Map(AdjacencyMap::new()),
        }
    }

    /// Creates an empty, unsized store of the given kind — the constructor
    /// for callers without a capacity estimate (baseline samplers whose
    /// stored-edge budget is probabilistic, generators that grow freely).
    pub fn new_of_kind(kind: BackendKind) -> Self {
        match kind {
            BackendKind::Compact => AdjacencyBackend::Compact(CompactAdjacency::new()),
            BackendKind::HashMap => AdjacencyBackend::Map(AdjacencyMap::new()),
        }
    }

    /// Which representation this store uses.
    #[inline]
    pub fn kind(&self) -> BackendKind {
        match self {
            AdjacencyBackend::Compact(_) => BackendKind::Compact,
            AdjacencyBackend::Map(_) => BackendKind::HashMap,
        }
    }

    /// Number of edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        match self {
            AdjacencyBackend::Compact(a) => a.num_edges(),
            AdjacencyBackend::Map(a) => a.num_edges(),
        }
    }

    /// Lifetime count of compact-pool spill transitions (always 0 for the
    /// map backend, which has no spill storage).
    pub fn spill_count(&self) -> u64 {
        match self {
            AdjacencyBackend::Compact(a) => a.spill_count(),
            AdjacencyBackend::Map(_) => 0,
        }
    }

    /// Number of nodes with at least one incident edge.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        match self {
            AdjacencyBackend::Compact(a) => a.num_nodes(),
            AdjacencyBackend::Map(a) => a.num_nodes(),
        }
    }

    /// Returns `true` if no edges are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_edges() == 0
    }

    /// Inserts `edge` with `value`, returning the replaced previous value.
    #[inline]
    pub fn insert(&mut self, edge: Edge, value: V) -> Option<V> {
        match self {
            AdjacencyBackend::Compact(a) => a.insert(edge, value),
            AdjacencyBackend::Map(a) => a.insert(edge, value),
        }
    }

    /// Like [`AdjacencyBackend::insert`], additionally returning endpoint
    /// [`EdgeHints`] (meaningful on the compact backend, [`EdgeHints::NONE`]
    /// on the hash map) that [`AdjacencyBackend::remove_hinted`] can use to
    /// skip node lookups.
    #[inline]
    pub fn insert_with_hints(&mut self, edge: Edge, value: V) -> (Option<V>, EdgeHints) {
        match self {
            AdjacencyBackend::Compact(a) => a.insert_with_hints(edge, value),
            AdjacencyBackend::Map(a) => (a.insert(edge, value), EdgeHints::NONE),
        }
    }

    /// Removes `edge`, returning its value if it was present.
    #[inline]
    pub fn remove(&mut self, edge: Edge) -> Option<V> {
        self.remove_hinted(edge, EdgeHints::NONE)
    }

    /// Removes `edge` using hints captured at insertion (hash-free node
    /// lookups on the compact backend; plain removal on the hash map).
    #[inline]
    pub fn remove_hinted(&mut self, edge: Edge, hints: EdgeHints) -> Option<V> {
        match self {
            AdjacencyBackend::Compact(a) => a.remove_hinted(edge, hints),
            AdjacencyBackend::Map(a) => a.remove(edge),
        }
    }

    /// Returns `true` if `edge` is present.
    #[inline]
    pub fn contains(&self, edge: Edge) -> bool {
        match self {
            AdjacencyBackend::Compact(a) => a.contains(edge),
            AdjacencyBackend::Map(a) => a.contains(edge),
        }
    }

    /// Returns the value stored on `edge`, if present.
    #[inline]
    pub fn get(&self, edge: Edge) -> Option<V> {
        match self {
            AdjacencyBackend::Compact(a) => a.get(edge),
            AdjacencyBackend::Map(a) => a.get(edge),
        }
    }

    /// Replaces the value on an existing edge; `false` if absent.
    #[inline]
    pub fn set(&mut self, edge: Edge, value: V) -> bool {
        match self {
            AdjacencyBackend::Compact(a) => a.set(edge, value),
            AdjacencyBackend::Map(a) => a.set(edge, value),
        }
    }

    /// Degree of `node` (0 if unknown).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        match self {
            AdjacencyBackend::Compact(a) => a.degree(node),
            AdjacencyBackend::Map(a) => a.degree(node),
        }
    }

    /// Calls `f(neighbor, value)` for every edge incident to `node`.
    #[inline]
    pub fn for_each_neighbor<F: FnMut(NodeId, V)>(&self, node: NodeId, mut f: F) {
        match self {
            AdjacencyBackend::Compact(a) => {
                for &(n, v) in a.neighbor_slice(node) {
                    f(n, v);
                }
            }
            AdjacencyBackend::Map(a) => {
                for (n, v) in a.neighbors(node) {
                    f(n, v);
                }
            }
        }
    }

    /// The `index`-th neighbor of `node` (with the value on the connecting
    /// edge), or `None` if `index >= degree(node)`.
    ///
    /// Which neighbor occupies a given index is representation-defined
    /// (compact lists are arrival-ordered inline / id-sorted once spilled;
    /// the hash map iterates in hash order), so this is only meaningful for
    /// order-oblivious uses — e.g. drawing a *uniform* random neighbor, the
    /// triad-formation step of the Holme–Kim generator. On the compact
    /// backend the access is O(1) slice indexing; on the hash map it is
    /// O(index) iteration.
    #[inline]
    pub fn neighbor_at(&self, node: NodeId, index: usize) -> Option<(NodeId, V)> {
        match self {
            AdjacencyBackend::Compact(a) => a.neighbor_slice(node).get(index).copied(),
            AdjacencyBackend::Map(a) => a.neighbors(node).nth(index),
        }
    }

    /// Calls `f(w, value_uw, value_vw)` for every common neighbor `w` of
    /// `u` and `v` (see [`CompactAdjacency::for_each_common_neighbor`]).
    #[inline]
    pub fn for_each_common_neighbor<F: FnMut(NodeId, V, V)>(&self, u: NodeId, v: NodeId, f: F) {
        match self {
            AdjacencyBackend::Compact(a) => a.for_each_common_neighbor(u, v, f),
            AdjacencyBackend::Map(a) => a.for_each_common_neighbor(u, v, f),
        }
    }

    /// Fused completion walk for the estimators: resolves each endpoint
    /// once, then calls `tri(w, value_uw, value_vw)` per common neighbor of
    /// `u` and `v` (same order as
    /// [`AdjacencyBackend::for_each_common_neighbor`]) and `wedge(value)`
    /// per edge incident to `u` excluding `(u, v)` itself, then per edge
    /// incident to `v` likewise (same per-node order as
    /// [`AdjacencyBackend::for_each_neighbor`]).
    #[inline]
    pub fn for_each_completion<FT, FW>(&self, u: NodeId, v: NodeId, tri: FT, wedge: FW)
    where
        FT: FnMut(NodeId, V, V),
        FW: FnMut(V),
    {
        match self {
            AdjacencyBackend::Compact(a) => a.for_each_completion(u, v, tri, wedge),
            AdjacencyBackend::Map(a) => a.for_each_completion(u, v, tri, wedge),
        }
    }

    /// Number of common neighbors of `u` and `v`.
    #[inline]
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        match self {
            AdjacencyBackend::Compact(a) => a.common_neighbor_count(u, v),
            AdjacencyBackend::Map(a) => a.common_neighbor_count(u, v),
        }
    }

    /// Fused `(common_neighbors, degree(u) + degree(v), edge_present)`.
    #[inline]
    pub fn triad_counts(&self, u: NodeId, v: NodeId) -> (usize, usize, bool) {
        match self {
            AdjacencyBackend::Compact(a) => a.triad_counts(u, v),
            AdjacencyBackend::Map(a) => a.triad_counts(u, v),
        }
    }

    /// Fused `(common_neighbors, edge_present)`.
    #[inline]
    pub fn triangle_closure_counts(&self, u: NodeId, v: NodeId) -> (usize, bool) {
        match self {
            AdjacencyBackend::Compact(a) => a.triangle_closure_counts(u, v),
            AdjacencyBackend::Map(a) => a.triangle_closure_counts(u, v),
        }
    }

    /// Fused `(degree(u) + degree(v), edge_present)`.
    #[inline]
    pub fn wedge_closure_counts(&self, u: NodeId, v: NodeId) -> (usize, bool) {
        match self {
            AdjacencyBackend::Compact(a) => a.wedge_closure_counts(u, v),
            AdjacencyBackend::Map(a) => a.wedge_closure_counts(u, v),
        }
    }

    /// Collects every edge with its value (diagnostics / persistence).
    pub fn edge_vec(&self) -> Vec<(Edge, V)> {
        match self {
            AdjacencyBackend::Compact(a) => a.edges().collect(),
            AdjacencyBackend::Map(a) => a.edges().collect(),
        }
    }

    /// Collects the node set (diagnostics).
    pub fn node_set(&self) -> FxHashSet<NodeId> {
        match self {
            AdjacencyBackend::Compact(a) => a.node_set(),
            AdjacencyBackend::Map(a) => a.node_set(),
        }
    }

    /// Removes all edges and nodes.
    pub fn clear(&mut self) {
        match self {
            AdjacencyBackend::Compact(a) => a.clear(),
            AdjacencyBackend::Map(a) => a.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kinds_agree_on_a_small_graph() {
        for kind in [BackendKind::Compact, BackendKind::HashMap] {
            let mut b: AdjacencyBackend<u32> = AdjacencyBackend::with_capacity(kind, 8, 8);
            assert_eq!(b.kind(), kind);
            assert!(b.is_empty());
            assert_eq!(b.insert(Edge::new(1, 2), 10), None);
            assert_eq!(b.insert(Edge::new(2, 3), 20), None);
            assert_eq!(b.insert(Edge::new(1, 3), 30), None);
            assert_eq!(b.num_edges(), 3);
            assert_eq!(b.num_nodes(), 3);
            assert!(b.contains(Edge::new(3, 1)));
            assert_eq!(b.get(Edge::new(2, 3)), Some(20));
            assert!(b.set(Edge::new(2, 3), 21));
            assert_eq!(b.get(Edge::new(2, 3)), Some(21));
            assert_eq!(b.degree(2), 2);
            assert_eq!(b.common_neighbor_count(1, 2), 1);
            let mut seen = vec![];
            b.for_each_common_neighbor(1, 2, |w, vu, vv| seen.push((w, vu, vv)));
            assert_eq!(seen, vec![(3, 30, 21)]);
            let mut incident = vec![];
            b.for_each_neighbor(3, |n, v| incident.push((n, v)));
            incident.sort_unstable();
            assert_eq!(incident, vec![(1, 30), (2, 21)]);
            assert_eq!(b.edge_vec().len(), 3);
            assert_eq!(b.node_set().len(), 3);
            assert_eq!(b.remove(Edge::new(1, 2)), Some(10));
            b.clear();
            assert!(b.is_empty());
        }
    }

    #[test]
    fn completion_walk_matches_separate_walks() {
        // for_each_completion must report exactly what the separate
        // common-neighbor + incident walks (with self-exclusion) report,
        // on both backends, for present/absent endpoint combinations.
        for kind in [BackendKind::Compact, BackendKind::HashMap] {
            let mut b: AdjacencyBackend<u32> = AdjacencyBackend::new_of_kind(kind);
            b.insert(Edge::new(1, 2), 12);
            b.insert(Edge::new(2, 3), 23);
            b.insert(Edge::new(1, 3), 13);
            b.insert(Edge::new(3, 4), 34);
            for (u, v) in [(1, 2), (2, 1), (1, 4), (4, 5), (5, 6), (3, 9)] {
                let (mut tri_a, mut wedge_a) = (vec![], vec![]);
                b.for_each_completion(u, v, |w, x, y| tri_a.push((w, x, y)), |x| wedge_a.push(x));
                let (mut tri_b, mut wedge_b) = (vec![], vec![]);
                b.for_each_common_neighbor(u, v, |w, x, y| tri_b.push((w, x, y)));
                b.for_each_neighbor(u, |n, x| {
                    if n != v {
                        wedge_b.push(x);
                    }
                });
                b.for_each_neighbor(v, |n, x| {
                    if n != u {
                        wedge_b.push(x);
                    }
                });
                tri_a.sort_unstable();
                tri_b.sort_unstable();
                wedge_a.sort_unstable();
                wedge_b.sort_unstable();
                assert_eq!(tri_a, tri_b, "{kind:?} common mismatch at ({u},{v})");
                assert_eq!(wedge_a, wedge_b, "{kind:?} incident mismatch at ({u},{v})");
            }
        }
    }

    #[test]
    fn default_is_compact() {
        let b: AdjacencyBackend<u32> = AdjacencyBackend::default();
        assert_eq!(b.kind(), BackendKind::Compact);
    }

    #[test]
    fn new_of_kind_builds_the_requested_representation() {
        for kind in [BackendKind::Compact, BackendKind::HashMap] {
            let b: AdjacencyBackend<()> = AdjacencyBackend::new_of_kind(kind);
            assert_eq!(b.kind(), kind);
            assert!(b.is_empty());
        }
    }

    #[test]
    fn neighbor_at_covers_each_neighbor_exactly_once() {
        for kind in [BackendKind::Compact, BackendKind::HashMap] {
            let mut b: AdjacencyBackend<u32> = AdjacencyBackend::new_of_kind(kind);
            for i in 0..10u32 {
                b.insert(Edge::new(100, i), i);
            }
            let mut seen: Vec<(NodeId, u32)> = (0..b.degree(100))
                .map(|i| b.neighbor_at(100, i).expect("index < degree"))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..10u32).map(|i| (i, i)).collect::<Vec<_>>());
            assert_eq!(b.neighbor_at(100, 10), None);
            assert_eq!(b.neighbor_at(999, 0), None, "unknown node has no neighbors");
        }
    }
}
