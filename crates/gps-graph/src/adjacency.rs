//! Dynamic undirected adjacency structure with per-edge values.
//!
//! [`AdjacencyMap<V>`] supports O(1) expected-time edge insertion, deletion
//! and membership tests, and neighbor iteration, while storing an arbitrary
//! value `V` per edge (the sampler stores reservoir slot ids; plain graph
//! uses store `()`).
//!
//! As of the compact-backend refactor the GPS reservoir runs on
//! [`crate::CompactAdjacency`] by default; this map remains the simple
//! reference implementation — the oracle for the differential property
//! tests and the "before" arm of the `bench_baseline` perf harness — and
//! still backs callers without hot-path pressure (generators, baselines,
//! incremental counters).
//!
//! Common-neighbor enumeration — the inner loop of both the triangle-count
//! weight function `W(k, K̂) = 9|△̂(k)| + 1` and the post-stream estimator —
//! iterates the smaller of the two endpoint neighborhoods and probes the
//! larger, giving the `O(min(deg(v1), deg(v2)))` cost the paper claims in
//! §3.2 (S4).

use crate::hash::{FxHashMap, FxHashSet};
use crate::types::{Edge, NodeId};

/// A dynamic undirected graph storing a value of type `V` on every edge.
///
/// Both endpoints index the edge, so each logical edge is stored twice; the
/// value is kept on both sides and must therefore be `Copy` (reservoir slot
/// ids are `u32`s). Self-loops are rejected by construction of [`Edge`].
#[derive(Clone, Debug)]
pub struct AdjacencyMap<V: Copy> {
    adj: FxHashMap<NodeId, FxHashMap<NodeId, V>>,
    num_edges: usize,
}

impl<V: Copy> Default for AdjacencyMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy> AdjacencyMap<V> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        AdjacencyMap {
            adj: FxHashMap::default(),
            num_edges: 0,
        }
    }

    /// Creates an empty graph sized for roughly `nodes` distinct nodes.
    pub fn with_node_capacity(nodes: usize) -> Self {
        AdjacencyMap {
            adj: FxHashMap::with_capacity_and_hasher(nodes, Default::default()),
            num_edges: 0,
        }
    }

    /// Number of edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of nodes with at least one incident edge.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if no edges are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Inserts `edge` with associated `value`, returning the previous value
    /// if the edge was already present (in which case the value is replaced).
    pub fn insert(&mut self, edge: Edge, value: V) -> Option<V> {
        let (u, v) = edge.endpoints();
        let prev = self.adj.entry(u).or_default().insert(v, value);
        self.adj.entry(v).or_default().insert(u, value);
        if prev.is_none() {
            self.num_edges += 1;
        }
        prev
    }

    /// Removes `edge`, returning its value if it was present. Nodes whose
    /// last incident edge is removed are dropped from the node table.
    pub fn remove(&mut self, edge: Edge) -> Option<V> {
        let (u, v) = edge.endpoints();
        let value = match self.adj.get_mut(&u) {
            Some(nbrs) => nbrs.remove(&v)?,
            None => return None,
        };
        if self.adj.get(&u).is_some_and(FxHashMap::is_empty) {
            self.adj.remove(&u);
        }
        if let Some(nbrs) = self.adj.get_mut(&v) {
            nbrs.remove(&u);
            if nbrs.is_empty() {
                self.adj.remove(&v);
            }
        }
        self.num_edges -= 1;
        Some(value)
    }

    /// Returns `true` if `edge` is present.
    #[inline]
    pub fn contains(&self, edge: Edge) -> bool {
        self.get(edge).is_some()
    }

    /// Returns the value stored on `edge`, if present.
    #[inline]
    pub fn get(&self, edge: Edge) -> Option<V> {
        self.adj
            .get(&edge.u())
            .and_then(|nbrs| nbrs.get(&edge.v()))
            .copied()
    }

    /// Replaces the value on an existing edge; returns `false` if the edge is
    /// absent.
    pub fn set(&mut self, edge: Edge, value: V) -> bool {
        let (u, v) = edge.endpoints();
        let Some(slot) = self.adj.get_mut(&u).and_then(|n| n.get_mut(&v)) else {
            return false;
        };
        *slot = value;
        let other = self
            .adj
            .get_mut(&v)
            .and_then(|n| n.get_mut(&u))
            .expect("edge stored on one side only");
        *other = value;
        true
    }

    /// Degree of `node` (0 if unknown).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj.get(&node).map_or(0, FxHashMap::len)
    }

    /// Iterates over the neighbors of `node` together with the value on the
    /// connecting edge.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, V)> + '_ {
        self.adj
            .get(&node)
            .into_iter()
            .flat_map(|nbrs| nbrs.iter().map(|(&n, &v)| (n, v)))
    }

    /// Iterates over all nodes with at least one incident edge.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates over every edge exactly once (via its normalized
    /// orientation) together with its value.
    pub fn edges(&self) -> impl Iterator<Item = (Edge, V)> + '_ {
        self.adj.iter().flat_map(|(&u, nbrs)| {
            nbrs.iter()
                .filter(move |(&n, _)| u < n)
                .map(move |(&n, &val)| (Edge::new(u, n), val))
        })
    }

    /// Calls `f(w, value_uw, value_vw)` for every common neighbor `w` of `u`
    /// and `v`, iterating the smaller neighborhood and probing the larger.
    ///
    /// This is the workhorse of triangle-weight computation: for an arriving
    /// edge `k = (u, v)` the number of calls equals `|△̂(k)|`, the number of
    /// sampled triangles `k` would complete.
    #[inline]
    pub fn for_each_common_neighbor<F>(&self, u: NodeId, v: NodeId, mut f: F)
    where
        F: FnMut(NodeId, V, V),
    {
        let (Some(nu), Some(nv)) = (self.adj.get(&u), self.adj.get(&v)) else {
            return;
        };
        Self::intersect_maps(nu, nv, &mut f);
    }

    /// The intersection kernel shared by
    /// [`AdjacencyMap::for_each_common_neighbor`] and
    /// [`AdjacencyMap::for_each_completion`]: `f(w, value_uw, value_vw)`
    /// per common key of `u`'s neighbor map `nu` and `v`'s `nv`, iterating
    /// the smaller map and probing the larger.
    fn intersect_maps<F>(nu: &FxHashMap<NodeId, V>, nv: &FxHashMap<NodeId, V>, f: &mut F)
    where
        F: FnMut(NodeId, V, V),
    {
        let (small, large) = if nu.len() <= nv.len() {
            (nu, nv)
        } else {
            (nv, nu)
        };
        let small_is_u = std::ptr::eq(small, nu);
        for (&w, &val_small) in small {
            if let Some(&val_large) = large.get(&w) {
                if small_is_u {
                    f(w, val_small, val_large);
                } else {
                    f(w, val_large, val_small);
                }
            }
        }
    }

    /// Fused completion walk (API parity with
    /// `CompactAdjacency::for_each_completion`): one resolution per
    /// endpoint, then `tri(w, value_uw, value_vw)` per common neighbor and
    /// `wedge(value)` per edge incident to `u` excluding `(u, v)`, then per
    /// edge incident to `v` likewise.
    pub fn for_each_completion<FT, FW>(&self, u: NodeId, v: NodeId, mut tri: FT, mut wedge: FW)
    where
        FT: FnMut(NodeId, V, V),
        FW: FnMut(V),
    {
        match (self.adj.get(&u), self.adj.get(&v)) {
            (Some(nu), Some(nv)) => {
                Self::intersect_maps(nu, nv, &mut tri);
                for (&n, &val) in nu {
                    if n != v {
                        wedge(val);
                    }
                }
                for (&n, &val) in nv {
                    if n != u {
                        wedge(val);
                    }
                }
            }
            // One endpoint absent: the edge (u, v) cannot be present, so no
            // exclusion check is needed on the surviving list.
            (Some(n), None) | (None, Some(n)) => {
                for &val in n.values() {
                    wedge(val);
                }
            }
            (None, None) => {}
        }
    }

    /// Number of common neighbors of `u` and `v` — i.e. the number of
    /// triangles an edge `(u, v)` closes in the current graph.
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let mut count = 0;
        self.for_each_common_neighbor(u, v, |_, _, _| count += 1);
        count
    }

    /// Fused per-edge topology query (API parity with
    /// `CompactAdjacency::triad_counts`): `(common_neighbors,
    /// degree(u) + degree(v), edge_present)`.
    pub fn triad_counts(&self, u: NodeId, v: NodeId) -> (usize, usize, bool) {
        (
            self.common_neighbor_count(u, v),
            self.degree(u) + self.degree(v),
            self.contains(Edge::new(u, v)),
        )
    }

    /// Fused `(common_neighbors, edge_present)` query (API parity with
    /// `CompactAdjacency::triangle_closure_counts`). Composes the two
    /// original lookups — deliberately no extra degree probes, so this map
    /// stays a faithful pre-refactor cost model when benchmarked.
    pub fn triangle_closure_counts(&self, u: NodeId, v: NodeId) -> (usize, bool) {
        (
            self.common_neighbor_count(u, v),
            self.contains(Edge::new(u, v)),
        )
    }

    /// Fused degree-sum + presence query (API parity with
    /// `CompactAdjacency::wedge_closure_counts`).
    pub fn wedge_closure_counts(&self, u: NodeId, v: NodeId) -> (usize, bool) {
        (
            self.degree(u) + self.degree(v),
            self.contains(Edge::new(u, v)),
        )
    }

    /// Removes all edges and nodes.
    pub fn clear(&mut self) {
        self.adj.clear();
        self.num_edges = 0;
    }

    /// Collects the node set (mainly for tests / diagnostics).
    pub fn node_set(&self) -> FxHashSet<NodeId> {
        self.adj.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> AdjacencyMap<u32> {
        let mut g = AdjacencyMap::new();
        g.insert(Edge::new(1, 2), 10);
        g.insert(Edge::new(2, 3), 20);
        g.insert(Edge::new(1, 3), 30);
        g
    }

    #[test]
    fn insert_is_idempotent_on_edge_count() {
        let mut g = AdjacencyMap::new();
        assert_eq!(g.insert(Edge::new(1, 2), 7), None);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(
            g.insert(Edge::new(2, 1), 8),
            Some(7),
            "reinsert replaces value"
        );
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.get(Edge::new(1, 2)), Some(8));
    }

    #[test]
    fn remove_returns_value_and_prunes_nodes() {
        let mut g = triangle_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.remove(Edge::new(2, 3)), Some(20));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3, "2 and 3 still touch edges to 1");
        assert_eq!(g.remove(Edge::new(1, 2)), Some(10));
        assert_eq!(g.remove(Edge::new(1, 3)), Some(30));
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.remove(Edge::new(1, 3)), None);
    }

    #[test]
    fn degree_and_neighbors() {
        let g = triangle_graph();
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(99), 0);
        let mut nbrs: Vec<(NodeId, u32)> = g.neighbors(1).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(2, 10), (3, 30)]);
        assert_eq!(g.neighbors(42).count(), 0);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_graph();
        let mut edges: Vec<Edge> = g.edges().map(|(e, _)| e).collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![Edge::new(1, 2), Edge::new(1, 3), Edge::new(2, 3)]
        );
    }

    #[test]
    fn common_neighbors_orients_values_correctly() {
        let g = triangle_graph();
        // Common neighbor of (1, 2) is 3: value on (1,3) = 30, value on (2,3) = 20.
        let mut seen = vec![];
        g.for_each_common_neighbor(1, 2, |w, vu, vv| seen.push((w, vu, vv)));
        assert_eq!(seen, vec![(3, 30, 20)]);

        // And in the reverse argument order the values swap.
        let mut seen = vec![];
        g.for_each_common_neighbor(2, 1, |w, vu, vv| seen.push((w, vu, vv)));
        assert_eq!(seen, vec![(3, 20, 30)]);
    }

    #[test]
    fn common_neighbor_count_on_book_graph() {
        // "Book" graph: triangle (1,2,3) plus pendant 4-1, and edge (2,4)
        // making a second triangle (1,2,4).
        let mut g = triangle_graph();
        g.insert(Edge::new(1, 4), 40);
        g.insert(Edge::new(2, 4), 50);
        assert_eq!(g.common_neighbor_count(1, 2), 2); // 3 and 4
        assert_eq!(g.common_neighbor_count(3, 4), 2); // 1 and 2 (no edge 3-4 needed)
        assert_eq!(g.common_neighbor_count(1, 99), 0);
    }

    #[test]
    fn set_updates_both_directions() {
        let mut g = triangle_graph();
        assert!(g.set(Edge::new(3, 2), 99));
        assert_eq!(g.get(Edge::new(2, 3)), Some(99));
        // Value visible from both endpoints' neighbor lists.
        assert_eq!(g.neighbors(2).find(|&(n, _)| n == 3), Some((3, 99)));
        assert_eq!(g.neighbors(3).find(|&(n, _)| n == 2), Some((2, 99)));
        assert!(!g.set(Edge::new(5, 6), 1));
    }

    #[test]
    fn clear_resets() {
        let mut g = triangle_graph();
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.num_nodes(), 0);
    }
}
