//! Fast hashing for small integer keys.
//!
//! The workspace hashes `u32` node ids and packed `u64` edge keys on every
//! streamed edge, so hash throughput is on the critical path of the sampler's
//! "few microseconds per edge" budget. std's default SipHash 1-3 is designed
//! for HashDoS resistance, which an in-process analytics reservoir does not
//! need. This module implements the well-known Fx multiply-rotate hash (the
//! algorithm used by `rustc`) locally, avoiding an extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher: for each machine word `w`,
/// `hash = (hash.rotate_left(5) ^ w).wrapping_mul(SEED)`.
///
/// Not cryptographic and not DoS-resistant — do not expose to untrusted keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Distinguish `[1, 0]` from `[1]`.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Convenience constructor for an empty [`FxHashMap`].
#[inline]
pub fn fx_hash_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor for an [`FxHashMap`] with capacity.
#[inline]
pub fn fx_hash_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Convenience constructor for an empty [`FxHashSet`].
#[inline]
pub fn fx_hash_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("hello"), hash_one("hello"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        // Weak sanity check that consecutive keys do not collide (a real
        // collision among 1000 consecutive u64s would break bucket spread).
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(hash_one).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn distinguishes_byte_slices_of_different_length() {
        assert_ne!(hash_one([1u8, 0u8].as_slice()), hash_one([1u8].as_slice()));
        assert_ne!(hash_one([0u8; 7].as_slice()), hash_one([0u8; 8].as_slice()));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map = fx_hash_map_with_capacity::<u64, u32>(8);
        for i in 0..100u64 {
            map.insert(i, (i * 2) as u32);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map[&7], 14);

        let mut set = fx_hash_set::<u32>();
        set.insert(3);
        assert!(set.contains(&3));
        assert!(!set.contains(&4));
    }

    #[test]
    fn tuple_keys_hash() {
        // Edge keys are hashed both as packed u64 and as (u32, u32) tuples in
        // various call sites; both must work.
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }
}
