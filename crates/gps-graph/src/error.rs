//! Error types for the graph substrate.

use std::fmt;
use std::io;

/// Errors produced when constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content (truncated).
        content: String,
    },
    /// An edge references itself (`u == v`); the graph model excludes
    /// self-loops.
    SelfLoop {
        /// The node forming the loop.
        node: u64,
    },
    /// A node identifier exceeded the dense `u32` node-id space.
    NodeSpaceExhausted,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, content } => {
                write!(f, "cannot parse edge-list line {line}: {content:?}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::NodeSpaceExhausted => {
                write!(f, "more than u32::MAX distinct nodes in input")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::Parse {
            line: 3,
            content: "a b c".into(),
        };
        assert!(format!("{e}").contains("line 3"));
        let e = GraphError::SelfLoop { node: 9 };
        assert!(format!("{e}").contains("node 9"));
        let e = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(format!("{e}").contains("nope"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        let e = GraphError::NodeSpaceExhausted;
        assert!(e.source().is_none());
    }
}
