//! Cache-friendly adjacency backend for the GPS reservoir hot path.
//!
//! [`CompactAdjacency<V>`] keeps the same observable behavior as
//! [`crate::AdjacencyMap`] but reorganizes storage around the access pattern
//! of `GPSUpdate` (paper §3.2): one duplicate check, one weight computation
//! dominated by the `O(min(deĝ(v1), deĝ(v2)))` common-neighbor intersection,
//! and at most one insert + one eviction per arrival. Four ideas:
//!
//! 1. **Node interning.** External [`NodeId`]s are mapped once to dense
//!    `u32` indices into a flat slot table holding id, degree and the first
//!    [`INLINE_NEIGHBORS`] neighbors together, so for the typical
//!    low-degree node one resolution answers degree, membership and
//!    iteration. (An open-addressed table holding the payload directly was
//!    tried and measured *slower*: inflating the 40-byte slots across a
//!    sparse power-of-two table costs more cache than the tiny 8-byte
//!    id→index map saves.) Slot indices are stable for a node's lifetime —
//!    see [`EdgeHints`].
//! 2. **Inline small-buffers with slab spill.** Neighbor lists longer than
//!    the inline cap spill into power-of-two blocks carved from one shared
//!    pool `Vec`, recycled through per-size-class free lists (the free
//!    "next" pointer lives inside the freed block itself, so the structure
//!    allocates nothing per edge once warm). Spilled blocks are kept
//!    sorted by neighbor id; inline lists use `swap_remove` eviction, and
//!    lists that shrink far enough migrate back inline.
//! 3. **Adaptive intersection kernel.** Common-neighbor enumeration walks
//!    the smaller list; the larger side is scanned linearly while it fits a
//!    couple of cache lines and binary-searched (it is a sorted spill
//!    block) past [`LINEAR_PROBE_MAX`]. The worst case is
//!    `O(min deg · log max deg)` contiguous probes inside the hub's own
//!    block — no hash probes, no pointer chasing.
//! 4. **Counting presence filter.** A power-of-two table of saturating
//!    `u8` counters (mirrored into an L1-sized bitset for probing) indexed
//!    by a multiply-shift of the node id. In reservoir use most stream
//!    arrivals touch nodes with *no* sampled edge, so `contains`, `degree`
//!    and the kernel answer "absent" from one bit probe per endpoint —
//!    the dominant cost of the steady-state reject path. A zero proves
//!    absence; anything else falls through to the real lookup, and a
//!    counter that saturates at 255 simply sticks (false positives only).
//!
//! There is **no edge hash table at all**: `contains`/`get` resolve one
//! endpoint and search its list (the slot fetch carries the inline list;
//! longer lists are sorted and binary-searched), and `edges()` sweeps the
//! slot table. The only hash in the structure is the node-interning map,
//! gated by the filter and bypassed on eviction via [`EdgeHints`].
//!
//! The old [`crate::AdjacencyMap`] remains in-tree as the differential
//! oracle (`tests/compact_differential.rs`) and as the baseline arm of the
//! `bench_baseline` perf harness.

use crate::hash::{FxHashMap, FxHashSet};
use crate::types::{Edge, NodeId};

/// Neighbor entries stored inline in a node slot before spilling.
pub const INLINE_NEIGHBORS: usize = 4;

/// A spilled list migrates back inline once its length drops to this.
const SHRINK_TO_INLINE: usize = INLINE_NEIGHBORS / 2;

/// Smallest spill block (entries); class `c` holds `BASE_BLOCK << c`.
const BASE_BLOCK: usize = 2 * INLINE_NEIGHBORS;

/// Number of spill size classes; the largest block holds
/// `BASE_BLOCK << (NUM_CLASSES - 1)` entries (64Mi at the defaults).
const NUM_CLASSES: usize = 24;

/// Empty free-list marker (pool offsets comfortably fit below it).
const FREE_NONE: u32 = u32::MAX;

/// Largest neighbor list the intersection kernel scans linearly; longer
/// lists are binary-searched (spilled blocks are sorted).
pub const LINEAR_PROBE_MAX: usize = 32;

/// Minimum presence-filter size (counters); always a power of two.
const MIN_FILTER_LEN: usize = 1024;

/// The filter is grown once live nodes exceed `len / FILTER_SLACK`,
/// keeping the aliasing (false-positive) rate low.
const FILTER_SLACK: usize = 4;

/// Fibonacci multiplier for the filter's multiply-shift index.
const MIX_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Entries of a spill size class.
#[inline]
fn block_len(class: u8) -> usize {
    BASE_BLOCK << class
}

/// Multiply-shift mix of a node id (maskable for any power-of-two table).
#[inline]
fn mix(node: NodeId) -> usize {
    ((node as u64).wrapping_mul(MIX_MUL) >> 32) as usize
}

/// Opaque endpoint-slot hints returned by
/// [`CompactAdjacency::insert_with_hints`]. A node's dense slot index is
/// stable for as long as the node has any incident edge, so the caller can
/// store the hints alongside the edge and pass them back to
/// [`CompactAdjacency::remove_hinted`] to skip both node-table hash probes
/// on eviction. Hints are verified before use and fall back to the normal
/// lookup, so a stale hint can never corrupt the structure.
/// [`EdgeHints::default`] (used by backends without hints) is always safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeHints {
    /// Slot of the smaller endpoint, or `FREE_NONE` for "no hint".
    u_idx: u32,
    /// Slot of the larger endpoint, or `FREE_NONE` for "no hint".
    v_idx: u32,
}

impl EdgeHints {
    /// The "no hint" value (safe everywhere, skips nothing).
    pub const NONE: EdgeHints = EdgeHints {
        u_idx: FREE_NONE,
        v_idx: FREE_NONE,
    };
}

impl Default for EdgeHints {
    fn default() -> Self {
        EdgeHints::NONE
    }
}

/// Where a node's neighbor list currently lives.
#[derive(Clone, Copy, Debug)]
enum NodeStorage<V: Copy> {
    /// Short list held directly in the slot table; `len` entries are live,
    /// in arrival order (`swap_remove` eviction).
    Inline([(NodeId, V); INLINE_NEIGHBORS]),
    /// List spilled to `pool[offset .. offset + block_len(class)]`, kept
    /// **sorted by neighbor id** so membership and the intersection kernel
    /// binary-search the node's own contiguous block (cache-hot for hubs)
    /// instead of hash-probing a shared table.
    Spill { offset: u32, class: u8 },
}

/// One interned node: its external id, live length, and list storage.
#[derive(Clone, Copy, Debug)]
struct NodeSlot<V: Copy> {
    id: NodeId,
    len: u32,
    storage: NodeStorage<V>,
}

/// A dynamic undirected graph storing a value of type `V` on every edge,
/// drop-in behavioral equivalent of [`crate::AdjacencyMap`] (see the module
/// docs for the representation differences).
#[derive(Clone, Debug)]
pub struct CompactAdjacency<V: Copy> {
    /// External node id → dense index into `slots`.
    index_of: FxHashMap<NodeId, u32>,
    /// Live (degree > 0) nodes.
    live_nodes: usize,
    /// Interned node table; freed slots are recycled through `free_slots`.
    slots: Vec<NodeSlot<V>>,
    free_slots: Vec<u32>,
    /// Shared spill storage for neighbor lists longer than the inline cap.
    pool: Vec<(NodeId, V)>,
    /// Head of the intrusive free list per size class (offset or FREE_NONE).
    free_blocks: [u32; NUM_CLASSES],
    /// Number of live edges (each stored once per endpoint list).
    num_edges: usize,
    /// Counting presence filter over node ids (power-of-two length).
    /// `filter[mix(id)] == 0` proves the node has no incident edge.
    node_filter: Vec<u8>,
    /// Bitset mirror of `node_filter != 0`, 1/8th the footprint so the hot
    /// probe stays L1-resident; counters remain the ground truth.
    node_bits: Vec<u64>,
    /// Monotone count of slow-path spill transitions (inline → pool block,
    /// or block growth to the next size class). Survives `clear` so
    /// telemetry sees lifetime totals.
    spills: u64,
}

impl<V: Copy> Default for CompactAdjacency<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy> CompactAdjacency<V> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Creates an empty graph pre-sized for roughly `nodes` distinct nodes
    /// and `edges` edges, so steady-state operation never rehashes.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let filter_len = (nodes * FILTER_SLACK)
            .next_power_of_two()
            .max(MIN_FILTER_LEN);
        CompactAdjacency {
            index_of: FxHashMap::with_capacity_and_hasher(nodes, Default::default()),
            live_nodes: 0,
            slots: Vec::with_capacity(nodes),
            free_slots: Vec::new(),
            pool: Vec::with_capacity(edges / 2),
            free_blocks: [FREE_NONE; NUM_CLASSES],
            num_edges: 0,
            node_filter: vec![0; filter_len],
            node_bits: vec![0; filter_len / 64],
            spills: 0,
        }
    }

    /// Creates an empty graph sized for roughly `nodes` distinct nodes
    /// (API parity with [`crate::AdjacencyMap::with_node_capacity`]).
    pub fn with_node_capacity(nodes: usize) -> Self {
        Self::with_capacity(nodes, nodes)
    }

    /// Number of edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of nodes with at least one incident edge.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.live_nodes
    }

    /// Returns `true` if no edges are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Inserts `edge` with associated `value`, returning the previous value
    /// if the edge was already present (in which case the value is replaced).
    pub fn insert(&mut self, edge: Edge, value: V) -> Option<V> {
        self.insert_with_hints(edge, value).0
    }

    /// Like [`CompactAdjacency::insert`], additionally returning the
    /// endpoint-slot [`EdgeHints`] valid for this edge's lifetime.
    pub fn insert_with_hints(&mut self, edge: Edge, value: V) -> (Option<V>, EdgeHints) {
        let (u, v) = edge.endpoints();
        // Duplicate check from u's list (no edge hash table exists): the
        // resolution that answers it is reused for the append, so u is
        // hashed at most once on the insert path.
        let u_idx = match self.lookup(u) {
            Some(u_idx) => {
                let (lu, lu_sorted) = self.list_tagged(u_idx);
                if Self::list_contains(lu, lu_sorted, v) {
                    let prev = self.update_entry_at(u_idx, v, value);
                    let (v_idx, _) = self.update_entry(v, u, value);
                    return (Some(prev), EdgeHints { u_idx, v_idx });
                }
                self.attach_at(u_idx, (v, value));
                u_idx
            }
            None => self.attach(u, (v, value)),
        };
        let v_idx = self.attach(v, (u, value));
        self.num_edges += 1;
        (None, EdgeHints { u_idx, v_idx })
    }

    /// Removes `edge`, returning its value if it was present. Nodes whose
    /// last incident edge is removed are dropped from the node table.
    pub fn remove(&mut self, edge: Edge) -> Option<V> {
        self.remove_hinted(edge, EdgeHints::NONE)
    }

    /// Like [`CompactAdjacency::remove`], using [`EdgeHints`] captured at
    /// insertion to skip both node-table hash probes. Hints are verified
    /// against the slot's node id and fall back to the id lookup on
    /// mismatch, so stale hints degrade to [`CompactAdjacency::remove`]
    /// rather than corrupting the structure.
    pub fn remove_hinted(&mut self, edge: Edge, hints: EdgeHints) -> Option<V> {
        let (u, v) = edge.endpoints();
        let u_idx = self.resolve_hint(u, hints.u_idx)?;
        {
            let (lu, lu_sorted) = self.list_tagged(u_idx);
            if !Self::list_contains(lu, lu_sorted, v) {
                return None;
            }
        }
        let v_idx = self
            .resolve_hint(v, hints.v_idx)
            .expect("edge stored on one side only");
        let value = self.detach_at(u_idx, u, v);
        self.detach_at(v_idx, v, u);
        self.num_edges -= 1;
        Some(value)
    }

    /// Maps a hinted slot index to a verified one (filter-gated lookup
    /// fallback); `None` if the node is absent.
    #[inline]
    fn resolve_hint(&self, node: NodeId, hint: u32) -> Option<u32> {
        match self.slots.get(hint as usize) {
            Some(slot) if slot.len > 0 && slot.id == node => Some(hint),
            _ => self.lookup(node),
        }
    }

    /// Returns `true` if `edge` is present: one node resolution plus a
    /// search of that endpoint's list (the slot fetch brings the inline
    /// list with it; longer lists are sorted and binary-searched).
    #[inline]
    pub fn contains(&self, edge: Edge) -> bool {
        if !self.maybe_present(edge.v()) {
            return false;
        }
        match self.lookup(edge.u()) {
            Some(idx) => {
                let (list, sorted) = self.list_tagged(idx);
                Self::list_contains(list, sorted, edge.v())
            }
            None => false,
        }
    }

    /// Returns the value stored on `edge`, if present.
    #[inline]
    pub fn get(&self, edge: Edge) -> Option<V> {
        if !self.maybe_present(edge.v()) {
            return None;
        }
        let idx = self.lookup(edge.u())?;
        let (list, sorted) = self.list_tagged(idx);
        Self::list_entry(list, sorted, edge.v())
    }

    /// Replaces the value on an existing edge; returns `false` if the edge
    /// is absent.
    pub fn set(&mut self, edge: Edge, value: V) -> bool {
        if !self.contains(edge) {
            return false;
        }
        let (u, v) = edge.endpoints();
        self.update_entry(u, v, value);
        self.update_entry(v, u, value);
        true
    }

    /// Degree of `node` (0 if unknown).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        match self.lookup(node) {
            Some(idx) => self.slots[idx as usize].len as usize,
            None => 0,
        }
    }

    /// The neighbor list of `node` as a contiguous slice (empty if unknown).
    #[inline]
    pub fn neighbor_slice(&self, node: NodeId) -> &[(NodeId, V)] {
        match self.lookup(node) {
            Some(idx) => self.list(idx),
            None => &[],
        }
    }

    /// Iterates over the neighbors of `node` together with the value on the
    /// connecting edge.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, V)> + '_ {
        self.neighbor_slice(node).iter().copied()
    }

    /// Iterates over all nodes with at least one incident edge.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().filter(|s| s.len > 0).map(|s| s.id)
    }

    /// Iterates over every edge exactly once (via its smaller endpoint's
    /// list) together with its value — a contiguous sweep of the slot table
    /// and pool, no hash iteration.
    pub fn edges(&self) -> impl Iterator<Item = (Edge, V)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len > 0)
            .flat_map(move |(idx, s)| {
                self.list(idx as u32)
                    .iter()
                    .filter(move |e| s.id < e.0)
                    .map(move |&(n, val)| (Edge::new(s.id, n), val))
            })
    }

    /// Calls `f(w, value_uw, value_vw)` for every common neighbor `w` of `u`
    /// and `v`, iterating the smaller neighborhood. The larger side is
    /// scanned linearly up to [`LINEAR_PROBE_MAX`] entries and
    /// binary-searched beyond that (spilled blocks are sorted), so the cost
    /// is `O(min deg)` sequential reads typically and
    /// `O(min deg · log max deg)` contiguous probes in the hub worst case.
    #[inline]
    pub fn for_each_common_neighbor<F>(&self, u: NodeId, v: NodeId, mut f: F)
    where
        F: FnMut(NodeId, V, V),
    {
        // One bit probe per endpoint rejects the (dominant) case where an
        // arriving edge touches no sampled node, before any hash probe.
        if !self.maybe_present(u) || !self.maybe_present(v) {
            return;
        }
        let (Some(iu), Some(iv)) = (self.probe_valid(u), self.probe_valid(v)) else {
            return;
        };
        let (lu, u_sorted) = self.list_tagged(iu);
        let (lv, v_sorted) = self.list_tagged(iv);
        Self::intersect_lists(lu, u_sorted, lv, v_sorted, &mut f);
    }

    /// Fused completion walk for the estimators (Algorithms 2/3): resolves
    /// `u` and `v` **once**, then reports every common neighbor via `tri`
    /// (the triangles an edge `(u, v)` completes — same enumeration order
    /// as [`CompactAdjacency::for_each_common_neighbor`]) and every edge
    /// incident to `u` (excluding `(u, v)` itself), then every edge
    /// incident to `v` (likewise), via `wedge`.
    ///
    /// The separate walks cost 4 endpoint resolutions per arrival (2 for
    /// the intersection + 1 per incident sweep); this does the same work
    /// with 2, and each exclusion check is a plain id compare on the slice
    /// being swept.
    #[inline]
    pub fn for_each_completion<FT, FW>(&self, u: NodeId, v: NodeId, mut tri: FT, mut wedge: FW)
    where
        FT: FnMut(NodeId, V, V),
        FW: FnMut(V),
    {
        let present_u = self.maybe_present(u);
        let present_v = self.maybe_present(v);
        if !present_u && !present_v {
            return;
        }
        let iu = if present_u { self.probe_valid(u) } else { None };
        let iv = if present_v { self.probe_valid(v) } else { None };
        match (iu, iv) {
            (Some(iu), Some(iv)) => {
                let (lu, u_sorted) = self.list_tagged(iu);
                let (lv, v_sorted) = self.list_tagged(iv);
                Self::intersect_lists(lu, u_sorted, lv, v_sorted, &mut tri);
                for &(n, val) in lu {
                    if n != v {
                        wedge(val);
                    }
                }
                for &(n, val) in lv {
                    if n != u {
                        wedge(val);
                    }
                }
            }
            // One endpoint absent: the edge (u, v) cannot be stored (it
            // would intern both endpoints), so no exclusion check is needed.
            (Some(i), None) | (None, Some(i)) => {
                for &(_, val) in self.list(i) {
                    wedge(val);
                }
            }
            (None, None) => {}
        }
    }

    /// The adaptive intersection kernel shared by
    /// [`CompactAdjacency::for_each_common_neighbor`] and
    /// [`CompactAdjacency::for_each_completion`]; `f(w, value_uw, value_vw)`
    /// per common neighbor `w`, `lu`/`lv` being the neighbor lists of `u`
    /// and `v` with their sortedness tags.
    #[inline]
    fn intersect_lists<F>(
        lu: &[(NodeId, V)],
        u_sorted: bool,
        lv: &[(NodeId, V)],
        v_sorted: bool,
        f: &mut F,
    ) where
        F: FnMut(NodeId, V, V),
    {
        if u_sorted && v_sorted && Self::balanced(lu.len(), lv.len()) {
            // Both spilled and comparably sized: sorted-merge intersection,
            // O(deg(u) + deg(v)) pure sequential reads. (Lopsided pairs
            // fall through to min-side iteration + binary search, which is
            // O(min deg · log max deg) — cheaper when max deg dominates.)
            let (mut i, mut j) = (0, 0);
            while i < lu.len() && j < lv.len() {
                let (a, b) = (lu[i].0, lv[j].0);
                match a.cmp(&b) {
                    std::cmp::Ordering::Equal => {
                        f(a, lu[i].1, lv[j].1);
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
            }
            return;
        }
        let (small, large, large_sorted, small_is_u) = if lu.len() <= lv.len() {
            (lu, lv, v_sorted, true)
        } else {
            (lv, lu, u_sorted, false)
        };
        if large_sorted && large.len() > LINEAR_PROBE_MAX {
            // Small inline side probes the hub's sorted block by binary
            // search — all probes stay inside the block.
            for &(w, val_small) in small {
                if let Ok(pos) = large.binary_search_by_key(&w, |e| e.0) {
                    let val_large = large[pos].1;
                    if small_is_u {
                        f(w, val_small, val_large);
                    } else {
                        f(w, val_large, val_small);
                    }
                }
            }
        } else {
            for &(w, val_small) in small {
                for &(x, val_large) in large {
                    if x == w {
                        if small_is_u {
                            f(w, val_small, val_large);
                        } else {
                            f(w, val_large, val_small);
                        }
                        break;
                    }
                }
            }
        }
    }

    /// Number of common neighbors of `u` and `v` — i.e. the number of
    /// triangles an edge `(u, v)` closes in the current graph.
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let mut count = 0;
        self.for_each_common_neighbor(u, v, |_, _, _| count += 1);
        count
    }

    /// Fused per-edge topology query for weight functions:
    /// `(common_neighbors, degree(u) + degree(v), edge_present)`, resolving
    /// each endpoint once. Edge presence is answered from the smaller
    /// neighbor list — no hash probe.
    pub fn triad_counts(&self, u: NodeId, v: NodeId) -> (usize, usize, bool) {
        let iu = self.lookup(u);
        let iv = self.lookup(v);
        let du = iu.map_or(0, |i| self.slots[i as usize].len as usize);
        let dv = iv.map_or(0, |i| self.slots[i as usize].len as usize);
        let (Some(iu), Some(iv)) = (iu, iv) else {
            return (0, du + dv, false);
        };
        let (common, present) = self.intersect_and_presence(iu, iv, u, v);
        (common, du + dv, present)
    }

    /// Fused `(common_neighbors, edge_present)` query (the triangle-weight
    /// inner loop). Unlike [`CompactAdjacency::triad_counts`] it needs no
    /// degrees, so an arrival touching *any* absent endpoint is answered
    /// from the two filter bit probes alone — no hash probe at all.
    pub fn triangle_closure_counts(&self, u: NodeId, v: NodeId) -> (usize, bool) {
        if !self.maybe_present(u) || !self.maybe_present(v) {
            return (0, false);
        }
        let (Some(iu), Some(iv)) = (self.probe_valid(u), self.probe_valid(v)) else {
            return (0, false);
        };
        self.intersect_and_presence(iu, iv, u, v)
    }

    /// Shared counting kernel behind the fused queries: the number of
    /// common neighbors of the nodes in slots `iu`/`iv` (ids `u`/`v`) and
    /// whether the edge `(u, v)` itself is present. Same adaptive strategy
    /// selection as [`CompactAdjacency::for_each_common_neighbor`].
    fn intersect_and_presence(&self, iu: u32, iv: u32, u: NodeId, v: NodeId) -> (usize, bool) {
        let (lu, u_sorted) = self.list_tagged(iu);
        let (lv, v_sorted) = self.list_tagged(iv);
        let (small, small_sorted, large_node) = if lu.len() <= lv.len() {
            (lu, u_sorted, v)
        } else {
            (lv, v_sorted, u)
        };
        let present = Self::list_contains(small, small_sorted, large_node);
        let mut common = 0;
        if u_sorted && v_sorted && Self::balanced(lu.len(), lv.len()) {
            let (mut i, mut j) = (0, 0);
            while i < lu.len() && j < lv.len() {
                match lu[i].0.cmp(&lv[j].0) {
                    std::cmp::Ordering::Equal => {
                        common += 1;
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
            }
        } else {
            let (small, large, large_sorted) = if lu.len() <= lv.len() {
                (lu, lv, v_sorted)
            } else {
                (lv, lu, u_sorted)
            };
            if large_sorted && large.len() > LINEAR_PROBE_MAX {
                for &(w, _) in small {
                    if large.binary_search_by_key(&w, |e| e.0).is_ok() {
                        common += 1;
                    }
                }
            } else {
                for &(w, _) in small {
                    if large.iter().any(|e| e.0 == w) {
                        common += 1;
                    }
                }
            }
        }
        (common, present)
    }

    /// Fused degree-sum + presence query (the wedge-weight inner loop):
    /// `(degree(u) + degree(v), edge_present)`, one resolution per endpoint
    /// and list-local membership.
    pub fn wedge_closure_counts(&self, u: NodeId, v: NodeId) -> (usize, bool) {
        let iu = self.lookup(u);
        let iv = self.lookup(v);
        let du = iu.map_or(0, |i| self.slots[i as usize].len as usize);
        let dv = iv.map_or(0, |i| self.slots[i as usize].len as usize);
        let (Some(iu), Some(iv)) = (iu, iv) else {
            return (du + dv, false);
        };
        let (small, small_sorted, large_node) = if du <= dv {
            let (l, s) = self.list_tagged(iu);
            (l, s, v)
        } else {
            let (l, s) = self.list_tagged(iv);
            (l, s, u)
        };
        (
            du + dv,
            Self::list_contains(small, small_sorted, large_node),
        )
    }

    /// Whether two sorted lists are close enough in size for a linear merge
    /// to beat per-candidate binary search (`min · log(max)` probes).
    #[inline]
    fn balanced(a: usize, b: usize) -> bool {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        large <= small.saturating_mul(8)
    }

    /// Membership of `nbr` in a neighbor list (binary search once a sorted
    /// list outgrows a few cache lines, linear otherwise).
    #[inline]
    fn list_contains(list: &[(NodeId, V)], sorted: bool, nbr: NodeId) -> bool {
        if sorted && list.len() > 8 {
            list.binary_search_by_key(&nbr, |e| e.0).is_ok()
        } else {
            list.iter().any(|e| e.0 == nbr)
        }
    }

    /// Value stored on the `nbr` entry of a neighbor list, if present.
    #[inline]
    fn list_entry(list: &[(NodeId, V)], sorted: bool, nbr: NodeId) -> Option<V> {
        if sorted && list.len() > 8 {
            list.binary_search_by_key(&nbr, |e| e.0)
                .ok()
                .map(|pos| list[pos].1)
        } else {
            list.iter().find(|e| e.0 == nbr).map(|e| e.1)
        }
    }

    /// Removes all edges and nodes, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.index_of.clear();
        self.live_nodes = 0;
        self.slots.clear();
        self.free_slots.clear();
        self.pool.clear();
        self.free_blocks = [FREE_NONE; NUM_CLASSES];
        self.num_edges = 0;
        self.node_filter.fill(0);
        self.node_bits.fill(0);
    }

    /// Collects the node set (mainly for tests / diagnostics).
    pub fn node_set(&self) -> FxHashSet<NodeId> {
        self.nodes().collect()
    }

    /// Entries currently allocated in the spill pool (diagnostics).
    #[inline]
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Lifetime count of slow-path spill transitions (inline lists moved
    /// to the pool plus block growths). Monotone across `clear`.
    #[inline]
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    // ---- presence filter ----------------------------------------------

    /// Filter index of `node` (masked multiply-shift; robust against
    /// strided id patterns).
    #[inline]
    fn filter_index(&self, node: NodeId) -> usize {
        mix(node) & (self.node_filter.len() - 1)
    }

    /// `false` proves `node` has no incident edge; `true` means "probably".
    /// One u64 load from the (L1-sized) bitset.
    #[inline]
    fn maybe_present(&self, node: NodeId) -> bool {
        let idx = self.filter_index(node);
        (self.node_bits[idx >> 6] >> (idx & 63)) & 1 != 0
    }

    /// Counts `node` into the filter (saturating — a stuck counter only
    /// causes false positives, never false negatives).
    #[inline]
    fn filter_add(&mut self, node: NodeId) {
        let idx = self.filter_index(node);
        let counter = &mut self.node_filter[idx];
        *counter = counter.saturating_add(1);
        self.node_bits[idx >> 6] |= 1 << (idx & 63);
    }

    /// Removes `node` from the filter. Saturated counters stick.
    #[inline]
    fn filter_remove(&mut self, node: NodeId) {
        let idx = self.filter_index(node);
        let counter = &mut self.node_filter[idx];
        if *counter != u8::MAX {
            *counter -= 1;
            if *counter == 0 {
                self.node_bits[idx >> 6] &= !(1 << (idx & 63));
            }
        }
    }

    /// Doubles the filter until the live node count fits the slack target,
    /// recounting every live node (also un-sticks saturated counters).
    #[cold]
    fn grow_filter(&mut self) {
        let target = (self.live_nodes * FILTER_SLACK)
            .next_power_of_two()
            .max(self.node_filter.len() * 2);
        self.node_filter = vec![0; target];
        self.node_bits = vec![0; target / 64];
        let live: Vec<NodeId> = self.nodes().collect();
        for node in live {
            self.filter_add(node);
        }
    }

    // ---- internal storage plumbing ------------------------------------

    /// Dense slot of `node`, filter-gated.
    #[inline]
    fn lookup(&self, node: NodeId) -> Option<u32> {
        if !self.maybe_present(node) {
            return None;
        }
        self.probe_valid(node)
    }

    /// Index lookup without the filter gate. (Index entries are removed
    /// eagerly on node death, so an entry that exists is always valid; a
    /// lazy-deletion variant with amortized purges was measured slower.)
    #[inline]
    fn probe_valid(&self, node: NodeId) -> Option<u32> {
        self.index_of.get(&node).copied()
    }

    /// Live neighbor entries of the node in `slots[idx]`.
    #[inline]
    fn list(&self, idx: u32) -> &[(NodeId, V)] {
        self.list_tagged(idx).0
    }

    /// Live neighbor entries plus whether they are sorted (spilled blocks
    /// are; inline arrays are in arrival order).
    #[inline]
    fn list_tagged(&self, idx: u32) -> (&[(NodeId, V)], bool) {
        let slot = &self.slots[idx as usize];
        let len = slot.len as usize;
        match &slot.storage {
            NodeStorage::Inline(arr) => (&arr[..len], false),
            NodeStorage::Spill { offset, .. } => (&self.pool[*offset as usize..][..len], true),
        }
    }

    /// Rewrites the stored value on the `node → nbr` list entry; returns
    /// the node's slot index and the previous value.
    fn update_entry(&mut self, node: NodeId, nbr: NodeId, value: V) -> (u32, V) {
        let idx = self.index_of[&node];
        (idx, self.update_entry_at(idx, nbr, value))
    }

    /// Rewrites the stored value on the `nbr` entry of the list in slot
    /// `idx`; returns the previous value.
    fn update_entry_at(&mut self, idx: u32, nbr: NodeId, value: V) -> V {
        let len = self.slots[idx as usize].len as usize;
        match &mut self.slots[idx as usize].storage {
            NodeStorage::Inline(arr) => {
                for entry in &mut arr[..len] {
                    if entry.0 == nbr {
                        let prev = entry.1;
                        entry.1 = value;
                        return prev;
                    }
                }
            }
            NodeStorage::Spill { offset, .. } => {
                let list = &mut self.pool[*offset as usize..][..len];
                if let Ok(pos) = list.binary_search_by_key(&nbr, |e| e.0) {
                    let prev = list[pos].1;
                    list[pos].1 = value;
                    return prev;
                }
            }
        }
        unreachable!("neighbor lists out of sync at slot {idx}->{nbr}");
    }

    /// Interns `node`, creating a slot if needed. `fill` initializes fresh
    /// inline storage (any valid entry; it is overwritten before first read).
    fn intern(&mut self, node: NodeId, fill: (NodeId, V)) -> u32 {
        if let Some(&idx) = self.index_of.get(&node) {
            return idx;
        }
        if (self.live_nodes + 1) * FILTER_SLACK > self.node_filter.len() {
            self.grow_filter();
        }
        self.filter_add(node);
        self.live_nodes += 1;
        let idx = match self.free_slots.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.id = node;
                slot.len = 0;
                slot.storage = NodeStorage::Inline([fill; INLINE_NEIGHBORS]);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(NodeSlot {
                    id: node,
                    len: 0,
                    storage: NodeStorage::Inline([fill; INLINE_NEIGHBORS]),
                });
                idx
            }
        };
        self.index_of.insert(node, idx);
        idx
    }

    /// Appends `entry` to `node`'s neighbor list (interning the node),
    /// spilling or growing the backing block as needed; returns the node's
    /// slot index.
    fn attach(&mut self, node: NodeId, entry: (NodeId, V)) -> u32 {
        let idx = self.intern(node, entry);
        self.attach_at(idx, entry);
        idx
    }

    /// Appends `entry` to the (already interned) node in slot `idx`.
    fn attach_at(&mut self, idx: u32, entry: (NodeId, V)) {
        let idx = idx as usize;
        let len = self.slots[idx].len as usize;
        // Fast paths: room in the current storage.
        match &mut self.slots[idx].storage {
            NodeStorage::Inline(arr) if len < INLINE_NEIGHBORS => {
                arr[len] = entry;
                self.slots[idx].len += 1;
                return;
            }
            NodeStorage::Spill { offset, class } if len < block_len(*class) => {
                let offset = *offset as usize;
                self.sorted_insert(offset, len, entry);
                self.slots[idx].len += 1;
                return;
            }
            _ => {}
        }
        // Slow path: current storage is full — spill inline → class 0, or
        // grow the block one size class (copy, then recycle the old block).
        self.spills += 1;
        match self.slots[idx].storage {
            NodeStorage::Inline(arr) => {
                let offset = self.alloc_block(0, entry);
                self.pool[offset..offset + INLINE_NEIGHBORS].copy_from_slice(&arr);
                self.pool[offset + len] = entry;
                // Spilled blocks are sorted; establish the invariant once.
                self.pool[offset..offset + len + 1].sort_unstable_by_key(|e| e.0);
                self.slots[idx].storage = NodeStorage::Spill {
                    offset: offset as u32,
                    class: 0,
                };
            }
            NodeStorage::Spill { offset, class } => {
                let new_offset = self.alloc_block(class + 1, entry);
                let old = offset as usize;
                self.pool.copy_within(old..old + len, new_offset);
                self.free_block(offset, class);
                self.sorted_insert(new_offset, len, entry);
                self.slots[idx].storage = NodeStorage::Spill {
                    offset: new_offset as u32,
                    class: class + 1,
                };
            }
        }
        self.slots[idx].len += 1;
    }

    /// Inserts `entry` into the sorted block `pool[offset..offset + len]`
    /// (which has room for at least one more element), shifting the tail.
    #[inline]
    fn sorted_insert(&mut self, offset: usize, len: usize, entry: (NodeId, V)) {
        let pos = self.pool[offset..offset + len].partition_point(|e| e.0 < entry.0);
        self.pool
            .copy_within(offset + pos..offset + len, offset + pos + 1);
        self.pool[offset + pos] = entry;
    }

    /// Removes `nbr` from the neighbor list of the node in slot `idx`, then
    /// migrates the list back inline or frees the node if warranted.
    /// Returns the value that was stored on the removed entry.
    fn detach_at(&mut self, idx: u32, node: NodeId, nbr: NodeId) -> V {
        let idx = idx as usize;
        let len = self.slots[idx].len as usize;
        let value;
        match &mut self.slots[idx].storage {
            NodeStorage::Inline(arr) => {
                let pos = arr[..len]
                    .iter()
                    .position(|e| e.0 == nbr)
                    .expect("neighbor missing from inline list");
                value = arr[pos].1;
                arr[pos] = arr[len - 1];
            }
            NodeStorage::Spill { offset, .. } => {
                let offset = *offset as usize;
                let pos = self.pool[offset..offset + len]
                    .binary_search_by_key(&nbr, |e| e.0)
                    .expect("neighbor missing from spilled list");
                value = self.pool[offset + pos].1;
                // Ordered removal (shift, not swap) keeps the block sorted.
                self.pool
                    .copy_within(offset + pos + 1..offset + len, offset + pos);
            }
        }
        let len = len - 1;
        self.slots[idx].len = len as u32;
        if len == 0 {
            // A spilled list migrates inline at SHRINK_TO_INLINE >= 1, so a
            // node can only die while inline — but recycle the block anyway
            // if that invariant ever changes. The stale storage is harmless:
            // `intern` resets it before the slot is reused.
            if let NodeStorage::Spill { offset, class } = self.slots[idx].storage {
                debug_assert!(false, "node died while still spilled");
                self.free_block(offset, class);
            }
            self.index_of.remove(&node);
            self.live_nodes -= 1;
            self.filter_remove(node);
            self.free_slots.push(idx as u32);
        } else if let NodeStorage::Spill { offset, class } = self.slots[idx].storage {
            if len <= SHRINK_TO_INLINE {
                let start = offset as usize;
                let mut arr = [self.pool[start]; INLINE_NEIGHBORS];
                arr[..len].copy_from_slice(&self.pool[start..start + len]);
                self.free_block(offset, class);
                self.slots[idx].storage = NodeStorage::Inline(arr);
            }
        }
        value
    }

    // ---- spill pool ----------------------------------------------------

    /// Allocates a block of size class `class`, recycling a freed block when
    /// one is available; fresh pool growth is filled with copies of `fill`.
    fn alloc_block(&mut self, class: u8, fill: (NodeId, V)) -> usize {
        assert!(
            (class as usize) < NUM_CLASSES,
            "neighbor list exceeds the largest spill class ({} entries)",
            block_len((NUM_CLASSES - 1) as u8)
        );
        let head = self.free_blocks[class as usize];
        if head != FREE_NONE {
            self.free_blocks[class as usize] = self.pool[head as usize].0;
            head as usize
        } else {
            let offset = self.pool.len();
            self.pool.resize(offset + block_len(class), fill);
            offset
        }
    }

    /// Returns a block to its size class free list. The list is intrusive:
    /// the next-pointer is stored in the `NodeId` field of the block's first
    /// (now dead) entry.
    fn free_block(&mut self, offset: u32, class: u8) {
        self.pool[offset as usize].0 = self.free_blocks[class as usize];
        self.free_blocks[class as usize] = offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> CompactAdjacency<u32> {
        let mut g = CompactAdjacency::new();
        g.insert(Edge::new(1, 2), 10);
        g.insert(Edge::new(2, 3), 20);
        g.insert(Edge::new(1, 3), 30);
        g
    }

    #[test]
    fn insert_is_idempotent_on_edge_count() {
        let mut g = CompactAdjacency::new();
        assert_eq!(g.insert(Edge::new(1, 2), 7), None);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(
            g.insert(Edge::new(2, 1), 8),
            Some(7),
            "reinsert replaces value"
        );
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.get(Edge::new(1, 2)), Some(8));
        // Replacement is visible through the neighbor lists too.
        assert_eq!(g.neighbors(1).next(), Some((2, 8)));
        assert_eq!(g.neighbors(2).next(), Some((1, 8)));
    }

    #[test]
    fn remove_returns_value_and_prunes_nodes() {
        let mut g = triangle_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.remove(Edge::new(2, 3)), Some(20));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3, "2 and 3 still touch edges to 1");
        assert_eq!(g.remove(Edge::new(1, 2)), Some(10));
        assert_eq!(g.remove(Edge::new(1, 3)), Some(30));
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.remove(Edge::new(1, 3)), None);
    }

    #[test]
    fn spill_grow_shrink_round_trip() {
        // Walk one hub through inline → spill → grown spill and back down,
        // checking contents at every step.
        let mut g: CompactAdjacency<u32> = CompactAdjacency::new();
        let hub = 1000;
        let degree = 3 * BASE_BLOCK as u32; // forces at least one block growth
        for i in 0..degree {
            g.insert(Edge::new(hub, i), i);
            assert_eq!(g.degree(hub), i as usize + 1);
        }
        let mut nbrs: Vec<(NodeId, u32)> = g.neighbors(hub).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, (0..degree).map(|i| (i, i)).collect::<Vec<_>>());
        // Remove most edges: the list shrinks and migrates back inline.
        for i in (SHRINK_TO_INLINE as u32..degree).rev() {
            assert_eq!(g.remove(Edge::new(hub, i)), Some(i));
        }
        assert_eq!(g.degree(hub), SHRINK_TO_INLINE);
        let mut nbrs: Vec<(NodeId, u32)> = g.neighbors(hub).collect();
        nbrs.sort_unstable();
        assert_eq!(
            nbrs,
            (0..SHRINK_TO_INLINE as u32)
                .map(|i| (i, i))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn spilled_lists_stay_sorted() {
        let mut g: CompactAdjacency<u32> = CompactAdjacency::new();
        let hub = 7;
        // Insert in a scrambled order and interleave removals.
        for i in [9u32, 3, 40, 12, 1, 33, 28, 5, 17, 2, 50, 21] {
            g.insert(Edge::new(hub, 100 + i), i);
        }
        g.remove(Edge::new(hub, 112));
        g.remove(Edge::new(hub, 101));
        let nbrs: Vec<NodeId> = g.neighbors(hub).map(|(n, _)| n).collect();
        let mut sorted = nbrs.clone();
        sorted.sort_unstable();
        assert_eq!(nbrs, sorted, "spilled list must remain sorted");
        assert_eq!(g.degree(hub), 10);
    }

    #[test]
    fn freed_blocks_are_recycled() {
        let mut g: CompactAdjacency<u32> = CompactAdjacency::new();
        let spill_degree = (INLINE_NEIGHBORS + 1) as u32;
        for i in 0..spill_degree {
            g.insert(Edge::new(100, 200 + i), i);
        }
        let pool_after_first_spill = g.pool_len();
        // Drop the hub entirely, then spill a different hub: the freed
        // class-0 block must be reused, not newly allocated.
        for i in 0..spill_degree {
            g.remove(Edge::new(100, 200 + i));
        }
        for i in 0..spill_degree {
            g.insert(Edge::new(101, 300 + i), i);
        }
        assert_eq!(g.pool_len(), pool_after_first_spill, "block not recycled");
        assert_eq!(g.degree(101), spill_degree as usize);
    }

    #[test]
    fn common_neighbors_orients_values_correctly() {
        let g = triangle_graph();
        let mut seen = vec![];
        g.for_each_common_neighbor(1, 2, |w, vu, vv| seen.push((w, vu, vv)));
        assert_eq!(seen, vec![(3, 30, 20)]);
        let mut seen = vec![];
        g.for_each_common_neighbor(2, 1, |w, vu, vv| seen.push((w, vu, vv)));
        assert_eq!(seen, vec![(3, 20, 30)]);
    }

    #[test]
    fn common_neighbors_binary_search_path_matches_linear() {
        // Make one endpoint's list longer than LINEAR_PROBE_MAX so the
        // kernel switches to binary search on the sorted block, and include
        // the (u, v) edge itself to check it is not reported.
        let mut g: CompactAdjacency<u32> = CompactAdjacency::new();
        let (u, v) = (10_000, 20_000);
        g.insert(Edge::new(u, v), 1);
        let big = (LINEAR_PROBE_MAX + 8) as u32;
        for i in 0..big {
            g.insert(Edge::new(v, 30_000 + i), 100 + i); // v is the hub
        }
        // Three genuine common neighbors.
        for w in [30_001u32, 30_005, 30_007] {
            g.insert(Edge::new(u, w), w);
        }
        let mut seen = vec![];
        g.for_each_common_neighbor(u, v, |w, vu, vv| seen.push((w, vu, vv)));
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![
                (30_001, 30_001, 101),
                (30_005, 30_005, 105),
                (30_007, 30_007, 107)
            ]
        );
        assert_eq!(g.common_neighbor_count(u, v), 3);
        let (tri, deg_sum, present) = g.triad_counts(u, v);
        assert_eq!(tri, 3);
        assert_eq!(deg_sum, g.degree(u) + g.degree(v));
        assert!(present);
        assert_eq!(g.wedge_closure_counts(u, v), (deg_sum, true));
    }

    #[test]
    fn set_updates_both_directions() {
        let mut g = triangle_graph();
        assert!(g.set(Edge::new(3, 2), 99));
        assert_eq!(g.get(Edge::new(2, 3)), Some(99));
        assert_eq!(g.neighbors(2).find(|&(n, _)| n == 3), Some((3, 99)));
        assert_eq!(g.neighbors(3).find(|&(n, _)| n == 2), Some((2, 99)));
        assert!(!g.set(Edge::new(5, 6), 1));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_graph();
        let mut edges: Vec<Edge> = g.edges().map(|(e, _)| e).collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![Edge::new(1, 2), Edge::new(1, 3), Edge::new(2, 3)]
        );
    }

    #[test]
    fn node_churn_recycles_slots_and_filter() {
        // Heavy node birth/death churn across disjoint id ranges: slot and
        // filter bookkeeping must stay exact throughout.
        let mut g: CompactAdjacency<u32> = CompactAdjacency::new();
        for round in 0u32..50 {
            let base = round * 1_000;
            for i in 0..40 {
                g.insert(Edge::new(base + i, base + i + 500), i);
            }
            assert_eq!(g.num_nodes(), 80, "round {round}");
            for i in 0..40 {
                assert_eq!(g.remove(Edge::new(base + i, base + i + 500)), Some(i));
            }
            assert_eq!(g.num_nodes(), 0, "round {round}");
            assert!(g.is_empty());
        }
        // Old ids must not resolve after their nodes died.
        assert_eq!(g.degree(500), 0);
        g.insert(Edge::new(1, 2), 9);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn stale_hints_fall_back_to_lookup() {
        let mut g: CompactAdjacency<u32> = CompactAdjacency::new();
        let (_, hints) = g.insert_with_hints(Edge::new(1, 2), 10);
        // Churn enough nodes that slot reuse and filter growth both occur
        // while the hinted edge stays alive.
        for i in 100..400u32 {
            g.insert(Edge::new(i, i + 1000), i);
        }
        for i in 100..300u32 {
            g.remove(Edge::new(i, i + 1000));
        }
        assert_eq!(g.remove_hinted(Edge::new(1, 2), hints), Some(10));
        // A wrong-but-in-range hint must also be survivable.
        let (_, h2) = g.insert_with_hints(Edge::new(5, 6), 77);
        let bogus = EdgeHints {
            u_idx: h2.v_idx,
            v_idx: h2.u_idx,
        };
        assert_eq!(g.remove_hinted(Edge::new(5, 6), bogus), Some(77));
        assert_eq!(g.degree(5), 0);
        assert_eq!(g.degree(6), 0);
    }

    #[test]
    fn node_slots_are_recycled_for_new_ids() {
        let mut g: CompactAdjacency<u32> = CompactAdjacency::new();
        g.insert(Edge::new(1, 2), 1);
        g.remove(Edge::new(1, 2));
        assert_eq!(g.num_nodes(), 0);
        g.insert(Edge::new(7, 8), 2);
        assert_eq!(g.num_nodes(), 2);
        let mut nodes: Vec<NodeId> = g.nodes().collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![7, 8]);
        assert_eq!(g.node_set().len(), 2);
        assert_eq!(g.degree(1), 0, "old id must not resolve to a reused slot");
    }

    #[test]
    fn clear_resets() {
        let mut g = triangle_graph();
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.pool_len(), 0);
    }
}
