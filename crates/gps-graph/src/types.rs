//! Compact node and edge types.
//!
//! Nodes are dense `u32` identifiers (the paper's graphs have at most a few
//! hundred million nodes, well inside `u32`). An undirected [`Edge`] is stored
//! *normalized* — `u() <= v()` — so that `(a, b)` and `(b, a)` compare and
//! hash identically, and packs into a single `u64` [`EdgeKey`] for use as a
//! hash-map key.

use std::fmt;

/// Dense node identifier.
pub type NodeId = u32;

/// Packed representation of a normalized edge: `(u as u64) << 32 | v`.
pub type EdgeKey = u64;

/// An undirected, normalized edge between two distinct nodes.
///
/// Construction normalizes the endpoints so `u() <= v()`. Self-loops are
/// rejected by [`Edge::try_new`] and are a logic error in [`Edge::new`]
/// (checked via `debug_assert!`); the paper's model explicitly excludes
/// self-loops ("Let G = (V,K) be a graph with no self loops").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: NodeId,
    v: NodeId,
}

impl Edge {
    /// Creates a normalized edge. `a` and `b` must be distinct.
    ///
    /// # Panics
    /// Panics in debug builds if `a == b`.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        debug_assert!(a != b, "self-loop ({a},{a}) is not a valid edge");
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Creates a normalized edge, returning `None` for self-loops.
    #[inline]
    pub fn try_new(a: NodeId, b: NodeId) -> Option<Self> {
        if a == b {
            None
        } else {
            Some(Self::new(a, b))
        }
    }

    /// Smaller endpoint.
    #[inline]
    pub fn u(&self) -> NodeId {
        self.u
    }

    /// Larger endpoint.
    #[inline]
    pub fn v(&self) -> NodeId {
        self.v
    }

    /// Both endpoints as a `(small, large)` pair.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Packs the edge into a single `u64` key.
    #[inline]
    pub fn key(&self) -> EdgeKey {
        ((self.u as u64) << 32) | self.v as u64
    }

    /// Reconstructs an edge from a packed key produced by [`Edge::key`].
    #[inline]
    pub fn from_key(key: EdgeKey) -> Self {
        let u = (key >> 32) as NodeId;
        let v = (key & 0xffff_ffff) as NodeId;
        debug_assert!(u < v, "malformed edge key {key:#x}");
        Edge { u, v }
    }

    /// Returns `true` if `node` is one of the endpoints.
    #[inline]
    pub fn touches(&self, node: NodeId) -> bool {
        self.u == node || self.v == node
    }

    /// Given one endpoint, returns the other; `None` if `node` is not an
    /// endpoint.
    #[inline]
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.u {
            Some(self.v)
        } else if node == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Returns `true` if the two edges share at least one endpoint (the
    /// paper's adjacency relation `k ~ k'`).
    #[inline]
    pub fn adjacent(&self, other: &Edge) -> bool {
        self != other && (other.touches(self.u) || other.touches(self.v))
    }

    /// The shared endpoint of two adjacent edges, if exactly one exists.
    #[inline]
    pub fn shared_endpoint(&self, other: &Edge) -> Option<NodeId> {
        if self == other {
            return None;
        }
        if other.touches(self.u) {
            Some(self.u)
        } else if other.touches(self.v) {
            Some(self.v)
        } else {
            None
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.u, self.v)
    }
}

impl From<(NodeId, NodeId)> for Edge {
    #[inline]
    fn from((a, b): (NodeId, NodeId)) -> Self {
        Edge::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_endpoints() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(5, 2).u(), 2);
        assert_eq!(Edge::new(5, 2).v(), 5);
    }

    #[test]
    fn try_new_rejects_self_loops() {
        assert!(Edge::try_new(3, 3).is_none());
        assert!(Edge::try_new(3, 4).is_some());
    }

    #[test]
    fn key_round_trips() {
        for (a, b) in [
            (0u32, 1u32),
            (7, 3),
            (1_000_000, 2),
            (u32::MAX - 1, u32::MAX),
        ] {
            let e = Edge::new(a, b);
            assert_eq!(Edge::from_key(e.key()), e);
        }
    }

    #[test]
    fn key_is_injective_on_distinct_edges() {
        let e1 = Edge::new(1, 2);
        let e2 = Edge::new(1, 3);
        let e3 = Edge::new(2, 3);
        assert_ne!(e1.key(), e2.key());
        assert_ne!(e1.key(), e3.key());
        assert_ne!(e2.key(), e3.key());
    }

    #[test]
    fn touches_and_other() {
        let e = Edge::new(4, 9);
        assert!(e.touches(4));
        assert!(e.touches(9));
        assert!(!e.touches(5));
        assert_eq!(e.other(4), Some(9));
        assert_eq!(e.other(9), Some(4));
        assert_eq!(e.other(1), None);
    }

    #[test]
    fn adjacency_relation() {
        let a = Edge::new(1, 2);
        let b = Edge::new(2, 3);
        let c = Edge::new(3, 4);
        assert!(a.adjacent(&b));
        assert!(!a.adjacent(&c));
        assert!(!a.adjacent(&a), "an edge is not adjacent to itself");
        assert_eq!(a.shared_endpoint(&b), Some(2));
        assert_eq!(a.shared_endpoint(&c), None);
    }

    #[test]
    fn ordering_is_lexicographic_on_normalized_pairs() {
        let mut edges = vec![Edge::new(2, 3), Edge::new(1, 9), Edge::new(1, 2)];
        edges.sort();
        assert_eq!(
            edges,
            vec![Edge::new(1, 2), Edge::new(1, 9), Edge::new(2, 3)]
        );
    }

    #[test]
    fn display_and_debug() {
        let e = Edge::new(7, 2);
        assert_eq!(format!("{e}"), "2-7");
        assert_eq!(format!("{e:?}"), "(2, 7)");
    }
}
