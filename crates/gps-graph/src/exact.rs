//! Exact subgraph counting — the ground truth for every experiment.
//!
//! The paper reports absolute relative errors against exact triangle counts
//! `N(△)`, wedge counts `N(Λ)` and the global clustering coefficient
//! `α = 3N(△)/N(Λ)`. This module computes those exactly on a [`CsrGraph`]:
//!
//! - [`triangle_count`] uses the degree-ordered forward algorithm
//!   (Chiba–Nishizeki style): orient each edge from lower to higher
//!   degree-rank and intersect out-neighborhoods, `O(m^{3/2})` worst case,
//!   `O(a(G) · m)` with arboricity `a(G)` — the same bound the paper cites
//!   for its estimation pass.
//! - [`wedge_count`] is the closed form `Σ_v deg(v)·(deg(v)-1)/2`.
//! - [`global_clustering`] combines the two.
//! - [`brute_force_triangle_count`] is an `O(n³)` reference used by the
//!   property-based tests.

use crate::csr::CsrGraph;
use crate::types::NodeId;

/// Exact number of triangles via degree-ordered intersection.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let n = g.num_nodes();
    if n < 3 {
        return 0;
    }
    // rank[v]: position of v when sorting by (degree, id). Orienting edges
    // toward higher rank bounds every out-degree by O(sqrt(m)).
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), v));
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }

    // Out-neighborhoods: for each v, neighbors with higher rank, sorted by id.
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n as NodeId {
        let rv = rank[v as usize];
        for &w in g.neighbors(v) {
            if rank[w as usize] > rv {
                out[v as usize].push(w);
            }
        }
        // CSR neighbor lists are sorted by id; the filter preserves that.
    }

    // Each triangle is counted once, at its lowest-rank vertex: for ranks
    // a < b < c the only contributing pair is (v, w) = (a, b) with x = c in
    // out(a) ∩ out(b). (`w` itself never matches since `w ∉ out(w)`.)
    let mut count = 0u64;
    for v in 0..n {
        let ov = &out[v];
        for &w in ov {
            count += sorted_intersection_count(ov, &out[w as usize]);
        }
    }
    count
}

/// Exact number of wedges (paths of length 2): `Σ_v C(deg(v), 2)`.
///
/// Returned as `u128` because large social graphs overflow `u64` wedges
/// (the paper's soc-twitter-2010 has 1.8 × 10¹² wedges; synthetic scale-ups
/// can go further).
pub fn wedge_count(g: &CsrGraph) -> u128 {
    (0..g.num_nodes() as NodeId)
        .map(|v| {
            let d = g.degree(v) as u128;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Global clustering coefficient `α = 3·N(△)/N(Λ)`; 0 for wedge-free graphs.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let w = wedge_count(g);
    if w == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / w as f64
}

/// Number of triangles containing the specific edge `(u, v)`:
/// `|Γ(u) ∩ Γ(v)|` by sorted-slice intersection.
pub fn triangles_of_edge(g: &CsrGraph, u: NodeId, v: NodeId) -> u64 {
    sorted_intersection_count(g.neighbors(u), g.neighbors(v))
}

/// Calls `f(a, b, c)` (with `a < b < c`) once per triangle. Used by tests
/// and by exhaustive motif analyses in examples.
pub fn for_each_triangle<F: FnMut(NodeId, NodeId, NodeId)>(g: &CsrGraph, mut f: F) {
    for u in 0..g.num_nodes() as NodeId {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            // Walk the sorted intersection of nu and neighbors(v), above v.
            let nv = g.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a > v {
                            f(u, v, a);
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
}

/// `O(n³)` brute-force triangle count over an adjacency-matrix view; only
/// for cross-checking the fast path in tests (keep `n` small).
pub fn brute_force_triangle_count(g: &CsrGraph) -> u64 {
    let n = g.num_nodes();
    let mut count = 0u64;
    for a in 0..n as NodeId {
        for b in (a + 1)..n as NodeId {
            if !g.has_edge(a, b) {
                continue;
            }
            for c in (b + 1)..n as NodeId {
                if g.has_edge(a, c) && g.has_edge(b, c) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Counts elements common to two ascending-sorted slices (linear merge).
#[inline]
fn sorted_intersection_count(a: &[NodeId], b: &[NodeId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn complete_graph(n: NodeId) -> CsrGraph {
        let mut edges = vec![];
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push(Edge::new(a, b));
            }
        }
        CsrGraph::from_edges(&edges)
    }

    #[test]
    fn triangle_count_on_known_graphs() {
        // K4 has C(4,3) = 4 triangles.
        assert_eq!(triangle_count(&complete_graph(4)), 4);
        // K6 has C(6,3) = 20.
        assert_eq!(triangle_count(&complete_graph(6)), 20);
        // A path has none.
        let path = CsrGraph::from_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
        assert_eq!(triangle_count(&path), 0);
        // A single triangle.
        let tri = CsrGraph::from_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
        assert_eq!(triangle_count(&tri), 1);
    }

    #[test]
    fn wedge_count_on_known_graphs() {
        // Star S5: center degree 5 → C(5,2) = 10 wedges.
        let star = CsrGraph::from_edges(&[
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(0, 4),
            Edge::new(0, 5),
        ]);
        assert_eq!(wedge_count(&star), 10);
        // Triangle: each vertex has degree 2 → 3 wedges.
        let tri = CsrGraph::from_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
        assert_eq!(wedge_count(&tri), 3);
        // K_n: n * C(n-1, 2).
        assert_eq!(wedge_count(&complete_graph(5)), 5 * 6);
    }

    #[test]
    fn clustering_coefficient_extremes() {
        // Complete graph: every wedge closes → α = 1.
        let g = complete_graph(6);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        // Star: no triangles → α = 0.
        let star = CsrGraph::from_edges(&[Edge::new(0, 1), Edge::new(0, 2), Edge::new(0, 3)]);
        assert_eq!(global_clustering(&star), 0.0);
        // Empty graph: defined as 0.
        assert_eq!(global_clustering(&CsrGraph::from_edges(&[])), 0.0);
    }

    #[test]
    fn triangles_of_edge_matches_enumeration() {
        let g = complete_graph(5);
        // In K5 every edge lies in n-2 = 3 triangles.
        assert_eq!(triangles_of_edge(&g, 0, 1), 3);
        let path = CsrGraph::from_edges(&[Edge::new(0, 1), Edge::new(1, 2)]);
        assert_eq!(triangles_of_edge(&path, 0, 1), 0);
    }

    #[test]
    fn for_each_triangle_enumerates_exactly() {
        let g = complete_graph(5);
        let mut triangles = vec![];
        for_each_triangle(&g, |a, b, c| {
            assert!(a < b && b < c);
            triangles.push((a, b, c));
        });
        triangles.sort_unstable();
        triangles.dedup();
        assert_eq!(triangles.len() as u64, triangle_count(&g));
        assert_eq!(triangles.len(), 10); // C(5,3)
    }

    #[test]
    fn fast_matches_brute_force_on_fixed_graphs() {
        let graphs = [
            complete_graph(7),
            CsrGraph::from_edges(&[
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 0),
                Edge::new(2, 3),
                Edge::new(3, 4),
                Edge::new(4, 2),
                Edge::new(0, 4),
            ]),
        ];
        for g in &graphs {
            assert_eq!(triangle_count(g), brute_force_triangle_count(g));
        }
    }

    #[test]
    fn counts_are_robust_to_skewed_degrees() {
        // Wheel graph: hub 0 connected to a cycle 1..=8.
        let mut edges: Vec<Edge> = (1..=8).map(|i| Edge::new(0, i)).collect();
        for i in 1..=8u32 {
            let j = if i == 8 { 1 } else { i + 1 };
            edges.push(Edge::new(i, j));
        }
        let g = CsrGraph::from_edges(&edges);
        // Each cycle edge forms exactly one triangle with the hub.
        assert_eq!(triangle_count(&g), 8);
        assert_eq!(triangle_count(&g), brute_force_triangle_count(&g));
    }
}
