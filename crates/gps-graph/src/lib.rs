//! Graph substrate for the `graph-priority-sampling` workspace.
//!
//! This crate provides everything the sampling layers need to talk about
//! graphs, independent of any sampling logic:
//!
//! - [`types`]: compact node/edge types ([`NodeId`], [`Edge`]) with packed
//!   64-bit edge keys suitable for hashing.
//! - [`hash`]: a fast Fx-style hasher and the [`FxHashMap`]/[`FxHashSet`]
//!   aliases used throughout the workspace (std's SipHash is needlessly slow
//!   for small integer keys).
//! - [`adjacency`]: a dynamic undirected adjacency structure with O(1)
//!   edge membership tests and value storage per edge — kept as the
//!   reference implementation / differential-test oracle.
//! - [`compact`]: the cache-friendly interned adjacency backend
//!   ([`CompactAdjacency`]) that actually backs the GPS reservoir: inline
//!   small-buffer neighbor lists spilling into a shared slab pool, with an
//!   adaptive common-neighbor kernel.
//! - [`backend`]: [`AdjacencyBackend`], a runtime-selectable wrapper over
//!   the two representations so samplers can be measured and differentially
//!   tested on both.
//! - [`csr`]: an immutable compressed-sparse-row graph for exact analytics.
//! - [`exact`]: exact triangle / wedge / clustering-coefficient computation
//!   (degree-ordered intersection, `O(m^{3/2})`) plus brute-force references
//!   used by the test-suite.
//! - [`incremental`]: an exact counter maintained edge-by-edge, used as the
//!   time-series ground truth for the paper's "estimates vs. time" plots.
//! - [`degrees`]: degree summaries of edge populations.
//! - [`io`]: white-space edge-list reading/writing with node relabeling and
//!   graph simplification (the paper uses undirected, simplified graphs).
//!
//! The crate has no dependencies and makes no assumptions about where edges
//! come from; streaming abstractions live in `gps-stream`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod backend;
pub mod compact;
pub mod csr;
pub mod degrees;
pub mod error;
pub mod exact;
pub mod hash;
pub mod incremental;
pub mod io;
pub mod types;

pub use adjacency::AdjacencyMap;
pub use backend::{AdjacencyBackend, BackendKind};
pub use compact::{CompactAdjacency, EdgeHints};
pub use csr::CsrGraph;
pub use error::GraphError;
pub use hash::{FxHashMap, FxHashSet};
pub use incremental::IncrementalCounter;
pub use types::{Edge, EdgeKey, NodeId};
