//! Incrementally-maintained exact triangle / wedge counts.
//!
//! The paper's "Unbiased Estimation vs. Time" experiments (Figure 3, Table 3)
//! compare streaming estimates against the *exact* counts at every point `t`
//! of the stream. Recomputing from scratch at each checkpoint is quadratic in
//! the stream length, so this counter maintains the exact counts
//! edge-by-edge:
//!
//! - adding edge `(u, v)` adds `|Γ(u) ∩ Γ(v)|` triangles, and
//!   `deg(u) + deg(v)` new wedges (paths centered at `u` and at `v`);
//! - removal reverses both (supported for completeness — the paper's streams
//!   are insert-only, but fully-dynamic baselines like TRIEST-FD need it).

use crate::adjacency::AdjacencyMap;
use crate::types::Edge;

/// Exact triangle/wedge/clustering tracker over an edge stream.
#[derive(Clone, Debug, Default)]
pub struct IncrementalCounter {
    graph: AdjacencyMap<()>,
    triangles: u64,
    wedges: u128,
}

impl IncrementalCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an edge, updating counts. Returns `false` (and changes
    /// nothing) if the edge was already present.
    pub fn insert(&mut self, edge: Edge) -> bool {
        if self.graph.contains(edge) {
            return false;
        }
        let (u, v) = edge.endpoints();
        self.triangles += self.graph.common_neighbor_count(u, v) as u64;
        self.wedges += (self.graph.degree(u) + self.graph.degree(v)) as u128;
        self.graph.insert(edge, ());
        true
    }

    /// Removes an edge, updating counts. Returns `false` if absent.
    pub fn remove(&mut self, edge: Edge) -> bool {
        if !self.graph.contains(edge) {
            return false;
        }
        let (u, v) = edge.endpoints();
        self.graph.remove(edge);
        self.triangles -= self.graph.common_neighbor_count(u, v) as u64;
        self.wedges -= (self.graph.degree(u) + self.graph.degree(v)) as u128;
        true
    }

    /// Exact triangle count of the graph streamed so far.
    #[inline]
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Exact wedge count of the graph streamed so far.
    #[inline]
    pub fn wedges(&self) -> u128 {
        self.wedges
    }

    /// Exact global clustering coefficient `3T/W` (0 when wedge-free).
    pub fn clustering(&self) -> f64 {
        if self.wedges == 0 {
            0.0
        } else {
            3.0 * self.triangles as f64 / self.wedges as f64
        }
    }

    /// Number of edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Read-only view of the underlying graph.
    #[inline]
    pub fn graph(&self) -> &AdjacencyMap<()> {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::exact;

    #[test]
    fn matches_batch_counts_on_small_graph() {
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(2, 3),
            Edge::new(3, 0),
            Edge::new(1, 3),
        ];
        let mut inc = IncrementalCounter::new();
        for (i, &e) in edges.iter().enumerate() {
            assert!(inc.insert(e));
            let csr = CsrGraph::from_edges(&edges[..=i]);
            assert_eq!(
                inc.triangles(),
                exact::triangle_count(&csr),
                "after {} edges",
                i + 1
            );
            assert_eq!(
                inc.wedges(),
                exact::wedge_count(&csr),
                "after {} edges",
                i + 1
            );
        }
        // K4 at the end: 4 triangles, 12 wedges, clustering 1.
        assert_eq!(inc.triangles(), 4);
        assert_eq!(inc.wedges(), 12);
        assert!((inc.clustering() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut inc = IncrementalCounter::new();
        assert!(inc.insert(Edge::new(0, 1)));
        assert!(!inc.insert(Edge::new(1, 0)));
        assert_eq!(inc.num_edges(), 1);
        assert_eq!(inc.wedges(), 0);
    }

    #[test]
    fn remove_reverses_insert() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(2, 3),
            Edge::new(0, 3),
        ];
        let mut inc = IncrementalCounter::new();
        for &e in &edges {
            inc.insert(e);
        }
        let (t, w) = (inc.triangles(), inc.wedges());
        inc.insert(Edge::new(1, 3));
        assert!(inc.remove(Edge::new(1, 3)));
        assert_eq!(inc.triangles(), t);
        assert_eq!(inc.wedges(), w);
        assert!(!inc.remove(Edge::new(1, 3)), "double-remove is a no-op");
    }

    #[test]
    fn full_teardown_reaches_zero() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(2, 3),
        ];
        let mut inc = IncrementalCounter::new();
        for &e in &edges {
            inc.insert(e);
        }
        for &e in edges.iter().rev() {
            inc.remove(e);
        }
        assert_eq!(inc.triangles(), 0);
        assert_eq!(inc.wedges(), 0);
        assert_eq!(inc.num_edges(), 0);
        assert_eq!(inc.clustering(), 0.0);
    }

    #[test]
    fn clustering_of_empty_graph_is_zero() {
        assert_eq!(IncrementalCounter::new().clustering(), 0.0);
    }
}
