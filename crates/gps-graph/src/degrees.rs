//! Degree summaries of edge populations.
//!
//! The synthetic-corpus generators are validated by their degree profiles
//! (heavy-tailed for social stand-ins, near-constant for road stand-ins), and
//! the experiment harness prints these summaries next to each workload so the
//! reader can compare against the paper's graph table.

use crate::csr::CsrGraph;

/// Summary statistics of a degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes considered (nodes with degree ≥ 1 plus padded ones).
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m/n`).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th-percentile degree — the tail indicator separating heavy-tailed
    /// social graphs from flat road networks.
    pub p99: usize,
}

impl DegreeStats {
    /// Computes stats over all nodes of `g` (isolated nodes count as degree 0).
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_nodes();
        if n == 0 {
            return DegreeStats {
                nodes: 0,
                edges: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                p99: 0,
            };
        }
        let mut degs: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();
        degs.sort_unstable();
        let edges = g.num_edges();
        DegreeStats {
            nodes: n,
            edges,
            min: degs[0],
            max: degs[n - 1],
            mean: 2.0 * edges as f64 / n as f64,
            median: degs[n / 2],
            p99: degs[((n as f64 * 0.99) as usize).min(n - 1)],
        }
    }

    /// Crude heavy-tail indicator: max degree at least 10× the median
    /// (and a median of at least 1 to avoid trivial graphs).
    pub fn is_heavy_tailed(&self) -> bool {
        self.median >= 1 && self.max >= 10 * self.median.max(1)
    }
}

/// Degree histogram as `(degree, node_count)` pairs, ascending by degree.
pub fn degree_histogram(g: &CsrGraph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for v in 0..g.num_nodes() {
        *counts.entry(g.degree(v as u32)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    #[test]
    fn stats_of_star() {
        let g = CsrGraph::from_edges(&[
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(0, 4),
        ]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.median, 1);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let s = DegreeStats::of(&CsrGraph::from_edges(&[]));
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_of_path() {
        let g = CsrGraph::from_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
        assert_eq!(degree_histogram(&g), vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn heavy_tail_indicator() {
        // A big star is heavy tailed; a cycle is not.
        let star: Vec<Edge> = (1..=50).map(|i| Edge::new(0, i)).collect();
        assert!(DegreeStats::of(&CsrGraph::from_edges(&star)).is_heavy_tailed());
        let cycle: Vec<Edge> = (0..50u32).map(|i| Edge::new(i, (i + 1) % 50)).collect();
        assert!(!DegreeStats::of(&CsrGraph::from_edges(&cycle)).is_heavy_tailed());
    }
}
