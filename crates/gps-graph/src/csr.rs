//! Immutable compressed-sparse-row (CSR) graph.
//!
//! [`CsrGraph`] stores an undirected simple graph as sorted neighbor slices,
//! the standard layout for exact analytics: neighbor access is a contiguous
//! slice, membership is a binary search, and the whole structure is two flat
//! allocations. Exact triangle/wedge counting (see [`crate::exact`]) runs on
//! this representation.

use crate::types::{Edge, NodeId};

/// An immutable undirected simple graph in CSR form.
///
/// Node ids are dense `0..num_nodes()`. Each edge appears in both endpoint
/// neighbor lists; lists are sorted ascending and deduplicated.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list.
    ///
    /// The input may contain duplicates (in either orientation); they are
    /// collapsed. Self-loops cannot be represented by [`Edge`] and so cannot
    /// occur. Node count is `max endpoint + 1` (isolated trailing nodes can
    /// be forced with `min_nodes`).
    pub fn from_edges(edges: &[Edge]) -> Self {
        Self::from_edges_with_min_nodes(edges, 0)
    }

    /// As [`CsrGraph::from_edges`], forcing at least `min_nodes` nodes.
    pub fn from_edges_with_min_nodes(edges: &[Edge], min_nodes: usize) -> Self {
        let num_nodes = edges
            .iter()
            .map(|e| e.v() as usize + 1)
            .max()
            .unwrap_or(0)
            .max(min_nodes);

        // Counting sort into CSR: one pass for degrees, one to scatter.
        let mut degree = vec![0usize; num_nodes];
        for e in edges {
            degree[e.u() as usize] += 1;
            degree[e.v() as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; acc];
        for e in edges {
            let (u, v) = e.endpoints();
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }

        // Sort + dedupe each neighbor list in place, then compact.
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(num_nodes + 1);
        new_offsets.push(0);
        for v in 0..num_nodes {
            let (start, end) = (offsets[v], offsets[v + 1]);
            targets[start..end].sort_unstable();
            let mut prev: Option<NodeId> = None;
            for i in start..end {
                let t = targets[i];
                if prev != Some(t) {
                    targets[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            new_offsets.push(write);
        }
        targets.truncate(write);
        debug_assert_eq!(write % 2, 0);
        CsrGraph {
            offsets: new_offsets,
            targets,
            num_edges: write / 2,
        }
    }

    /// Number of nodes (including isolated ones below the max id).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Membership test by binary search: `O(log deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u as usize >= self.num_nodes() || v as usize >= self.num_nodes() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates every undirected edge exactly once, in `(u, v)` order with
    /// `u < v`, ascending.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge::new(u, v))
        })
    }

    /// Collects all edges into a vector (normalized, ascending).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrGraph {
        // 0 - 1 - 2 - 3
        CsrGraph::from_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)])
    }

    #[test]
    fn basic_shape() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = CsrGraph::from_edges(&[
            Edge::new(0, 1),
            Edge::new(1, 0),
            Edge::new(0, 1),
            Edge::new(1, 2),
        ]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = path_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 99), "out-of-range nodes are simply absent");
    }

    #[test]
    fn edges_round_trip() {
        let input = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(0, 3),
        ];
        let g = CsrGraph::from_edges(&input);
        let mut expect = input.clone();
        expect.sort();
        assert_eq!(g.edge_vec(), expect);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(&[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn min_nodes_pads_isolated_vertices() {
        let g = CsrGraph::from_edges_with_min_nodes(&[Edge::new(0, 1)], 10);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(7), 0);
        assert_eq!(g.neighbors(7), &[] as &[NodeId]);
    }
}
