//! Edge-list I/O.
//!
//! Real-world corpora (e.g. networkrepository.com, SNAP) ship as white-space
//! separated edge lists with assorted comment conventions and sparse node
//! ids. [`read_edge_list`] handles those: it skips `#`/`%` comment lines,
//! accepts extra columns (weights/timestamps are ignored), relabels arbitrary
//! `u64` ids onto the dense `u32` space via [`NodeRelabeler`], and — matching
//! the paper's preprocessing — *simplifies* the graph (undirected, duplicate
//! edges and self-loops dropped).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::GraphError;
use crate::hash::FxHashMap;
use crate::types::{Edge, NodeId};

/// Maps sparse external `u64` node identifiers onto dense internal [`NodeId`]s.
#[derive(Debug, Default)]
pub struct NodeRelabeler {
    map: FxHashMap<u64, NodeId>,
}

impl NodeRelabeler {
    /// Creates an empty relabeler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dense id for `external`, allocating the next free id on
    /// first sight.
    pub fn relabel(&mut self, external: u64) -> Result<NodeId, GraphError> {
        if let Some(&id) = self.map.get(&external) {
            return Ok(id);
        }
        let next = self.map.len();
        if next > u32::MAX as usize {
            return Err(GraphError::NodeSpaceExhausted);
        }
        let id = next as NodeId;
        self.map.insert(external, id);
        Ok(id)
    }

    /// Number of distinct nodes seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no nodes have been seen.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Options controlling edge-list parsing.
#[derive(Clone, Copy, Debug)]
pub struct ReadOptions {
    /// Drop duplicate edges (in either orientation). Default `true`.
    pub dedupe: bool,
    /// Silently skip self-loops instead of failing. Default `true`
    /// (the paper considers simplified graphs without self loops).
    pub skip_self_loops: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            dedupe: true,
            skip_self_loops: true,
        }
    }
}

/// Reads a white-space separated edge list from `reader`.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each data
/// line must begin with two integer fields; further fields are ignored.
pub fn read_edge_list<R: Read>(reader: R, opts: ReadOptions) -> Result<Vec<Edge>, GraphError> {
    let mut reader = BufReader::new(reader);
    let mut relabel = NodeRelabeler::new();
    let mut edges = Vec::new();
    let mut seen = crate::hash::FxHashSet::default();
    let mut line = String::new();
    let mut lineno = 0usize;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse_err = || GraphError::Parse {
            line: lineno,
            content: trimmed.chars().take(80).collect(),
        };
        let a: u64 = fields
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let b: u64 = fields
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        if a == b {
            if opts.skip_self_loops {
                continue;
            }
            return Err(GraphError::SelfLoop { node: a });
        }
        let edge = Edge::new(relabel.relabel(a)?, relabel.relabel(b)?);
        if opts.dedupe && !seen.insert(edge.key()) {
            continue;
        }
        edges.push(edge);
    }
    Ok(edges)
}

/// Reads an edge list from a file path. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    opts: ReadOptions,
) -> Result<Vec<Edge>, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, opts)
}

/// Writes edges as `u v` lines (buffered; one syscall per ~8 KiB).
pub fn write_edge_list<W: Write>(writer: W, edges: &[Edge]) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for e in edges {
        writeln!(w, "{} {}", e.u(), e.v())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes edges to a file path. See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, edges: &[Edge]) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(file, edges)
}

/// Removes duplicates (in either orientation) from an in-memory edge list,
/// preserving first-occurrence order. Self-loops cannot be represented by
/// [`Edge`], so the result is a simple graph edge list.
pub fn simplify(edges: &[Edge]) -> Vec<Edge> {
    let mut seen = crate::hash::FxHashSet::default();
    edges
        .iter()
        .copied()
        .filter(|e| seen.insert(e.key()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blank_lines_and_extra_columns() {
        let input = "# a comment\n% another\n\n1 2\n2 3 17.5\n3 1 42 1999\n";
        let edges = read_edge_list(input.as_bytes(), ReadOptions::default()).unwrap();
        assert_eq!(edges.len(), 3);
        // Relabeling is first-seen order: 1→0, 2→1, 3→2.
        assert_eq!(edges[0], Edge::new(0, 1));
        assert_eq!(edges[1], Edge::new(1, 2));
        assert_eq!(edges[2], Edge::new(0, 2));
    }

    #[test]
    fn dedupes_both_orientations() {
        let input = "5 9\n9 5\n5 9\n5 6\n";
        let edges = read_edge_list(input.as_bytes(), ReadOptions::default()).unwrap();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn keeps_duplicates_when_asked() {
        let input = "5 9\n9 5\n";
        let opts = ReadOptions {
            dedupe: false,
            ..Default::default()
        };
        let edges = read_edge_list(input.as_bytes(), opts).unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], edges[1]);
    }

    #[test]
    fn self_loops_skipped_or_rejected() {
        let input = "1 1\n1 2\n";
        let edges = read_edge_list(input.as_bytes(), ReadOptions::default()).unwrap();
        assert_eq!(edges.len(), 1);

        let opts = ReadOptions {
            skip_self_loops: false,
            ..Default::default()
        };
        let err = read_edge_list(input.as_bytes(), opts).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let input = "1 2\nnot numbers\n";
        let err = read_edge_list(input.as_bytes(), ReadOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 3)];
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &edges).unwrap();
        let back = read_edge_list(buf.as_slice(), ReadOptions::default()).unwrap();
        assert_eq!(back, edges);
    }

    #[test]
    fn relabeler_is_stable_and_bounded() {
        let mut r = NodeRelabeler::new();
        assert_eq!(r.relabel(10_000_000_000).unwrap(), 0);
        assert_eq!(r.relabel(7).unwrap(), 1);
        assert_eq!(r.relabel(10_000_000_000).unwrap(), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn simplify_preserves_order() {
        let edges = vec![
            Edge::new(3, 4),
            Edge::new(1, 2),
            Edge::new(4, 3),
            Edge::new(1, 2),
            Edge::new(2, 5),
        ];
        assert_eq!(
            simplify(&edges),
            vec![Edge::new(3, 4), Edge::new(1, 2), Edge::new(2, 5)]
        );
    }
}
