//! The interleaving checker's two obligations:
//!
//! 1. the *correct* seqlock/board specs survive every enumerated schedule
//!    (well over the 10⁴ floor, untruncated) with zero violations;
//! 2. weakening any single ordering the real code relies on makes the
//!    checker report the bug class that ordering exists to prevent — so a
//!    future "optimization" that demotes an ordering fails this suite.

use gps_analyze::interleave::machine::Mo;
use gps_analyze::interleave::models::{
    board_model, seqlock_model, standard_runs, BoardSpec, SeqlockSpec,
};
use gps_analyze::interleave::{execute, explore, explore_with_final, Bound};

#[test]
fn standard_suite_is_clean_and_exhaustive() {
    let mut total = 0u64;
    for run in standard_runs() {
        let r = execute(&run);
        assert!(!r.truncated, "{}: truncated at the schedule cap", run.name);
        assert!(
            r.clean(),
            "{}: {} violation(s), first: {:?}",
            run.name,
            r.violations.len(),
            r.violations.first()
        );
        assert!(r.schedules > 0, "{}: explored nothing", run.name);
        total += r.schedules;
    }
    assert!(
        total >= 10_000,
        "suite must enumerate at least 10^4 distinct schedules, got {total}"
    );
}

/// Helper: fully explore a small seqlock config under `spec` and return
/// the violation messages.
fn seqlock_violations(spec: &SeqlockSpec) -> Vec<String> {
    let m = seqlock_model(spec, 1, 1, 1, 1);
    let r = explore(&m, Bound::exhaustive());
    assert!(!r.truncated);
    r.violations.into_iter().map(|v| v.what).collect()
}

#[test]
fn weakened_final_seq_store_is_caught() {
    let spec = SeqlockSpec {
        final_seq_store: Mo::Relaxed,
        ..SeqlockSpec::correct()
    };
    let got = seqlock_violations(&spec);
    assert!(
        got.iter().any(|w| w.contains("torn read")),
        "demoting the publishing Release store must surface a torn read, got {got:?}"
    );
}

#[test]
fn weakened_writer_release_fence_is_caught() {
    let spec = SeqlockSpec {
        writer_release_fence: false,
        ..SeqlockSpec::correct()
    };
    let got = seqlock_violations(&spec);
    assert!(
        got.iter().any(|w| w.contains("torn read")),
        "dropping the writer's Release fence must surface a torn read, got {got:?}"
    );
}

#[test]
fn weakened_reader_acquire_fence_is_caught() {
    let spec = SeqlockSpec {
        reader_acquire_fence: false,
        ..SeqlockSpec::correct()
    };
    let got = seqlock_violations(&spec);
    assert!(
        got.iter().any(|w| w.contains("torn read")),
        "dropping the reader's Acquire fence must surface a torn read, got {got:?}"
    );
}

#[test]
fn weakened_reader_first_load_is_caught() {
    let spec = SeqlockSpec {
        reader_first_load: Mo::Relaxed,
        ..SeqlockSpec::correct()
    };
    let got = seqlock_violations(&spec);
    assert!(
        got.iter().any(|w| w.contains("torn read")),
        "demoting the reader's Acquire first load must surface a torn read, got {got:?}"
    );
}

#[test]
fn board_without_gate_violates_the_floor() {
    let spec = BoardSpec {
        gate_on_all_shards: false,
        ..BoardSpec::correct()
    };
    let m = board_model(&spec, 1, 2);
    let r = explore(&m, Bound::exhaustive());
    assert!(!r.truncated);
    let got: Vec<_> = r.violations.iter().map(|v| v.what.as_str()).collect();
    assert!(
        got.iter().any(|w| w.contains("gate bypassed")),
        "removing the all-shards gate must publish below the floor, got {got:?}"
    );
}

#[test]
fn board_without_mutex_loses_updates() {
    let spec = BoardSpec {
        merge_under_mutex: false,
        ..BoardSpec::correct()
    };
    let m = board_model(&spec, 0, 0);
    // Bug-hunting needs a witness, not exhaustion: the unlocked state
    // space is enormous, and the lost update shows up within the first
    // slice of it, so a truncated search is fine here.
    let bound = Bound {
        preemptions: u32::MAX,
        max_schedules: 500_000,
    };
    let r = explore_with_final(&m, bound, &gps_analyze::interleave::models::board_final_ok);
    let got: Vec<_> = r.violations.iter().map(|v| v.what.as_str()).collect();
    assert!(
        got.iter().any(|w| w.contains("lost update")),
        "unlocked merge must drop a version increment in some schedule, got {got:?}"
    );
}

#[test]
fn board_with_relaxed_publish_leaks_stale_watermark() {
    let spec = BoardSpec {
        publish_store: Mo::Relaxed,
        ..BoardSpec::correct()
    };
    let m = board_model(&spec, 1, 2);
    let r = explore(&m, Bound::exhaustive());
    assert!(!r.truncated);
    let got: Vec<_> = r.violations.iter().map(|v| v.what.as_str()).collect();
    assert!(
        got.iter()
            .any(|w| w.contains("floor") || w.contains("regressed")),
        "a relaxed publish lets readers see the version before its watermark, got {got:?}"
    );
}

#[test]
fn correct_specs_reproduce_the_source() {
    // The spec structs mirror epoch.rs/board.rs field-for-field; a drive-by
    // edit of `correct()` should fail here, not silently weaken the suite.
    let sl = SeqlockSpec::correct();
    assert!(sl.writer_release_fence && sl.reader_acquire_fence);
    assert_eq!(sl.final_seq_store, Mo::Release);
    assert_eq!(sl.reader_first_load, Mo::Acquire);
    let bd = BoardSpec::correct();
    assert!(bd.gate_on_all_shards && bd.merge_under_mutex);
    assert_eq!(bd.publish_store, Mo::Release);
}
