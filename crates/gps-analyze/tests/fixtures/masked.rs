//! Fixture: every "violation" below lives in a comment or string and must
//! not fire. A linter without the masking lexer reports all of them.
#![forbid(unsafe_code)]

// Dead giveaways in comments: std::collections::HashMap, thread_rng(),
// Instant::now(), .unwrap(), Ordering::SeqCst, #[allow(dead_code)].

/* Block comments too: use std::collections::HashSet; x.expect("boom") */

pub fn docs() -> &'static str {
    "std::collections::HashMap and thread_rng and Instant::now \
     and .unwrap() and Ordering::Relaxed and #[allow(bad)]"
}

pub fn raw() -> &'static str {
    r#"SystemTime::now().unwrap() inside a raw string: Ordering::Acquire"#
}

pub fn tricky() -> char {
    let _lifetime_not_char: &'static str = "fine";
    '"'
}
