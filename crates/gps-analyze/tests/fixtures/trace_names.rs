//! Fixture: trace stage/mark recordings for the metric-name-registry
//! rule's trace-name extension. Linted with a synthetic catalog that
//! documents `fix_stage_documented` and `fix_mark_documented`.

pub fn record(trace: &mut EpochTrace, now: u64) {
    trace.stage("fix_stage_documented", 0, now, 1);
    trace.stage("fix_stage_undocumented", 0, now, 0);
    trace.mark("fix_mark_documented", now, None, 0);
    trace.stage("fix_stage_documented", now, now, 2);
    // A timeline lookup must not count as a recording, nor a name that
    // only appears in prose: `fix_stage_comment_only`.
    let _s = trace.span("fix_stage_never_recorded");
}

#[cfg(test)]
mod tests {
    fn test_only(trace: &mut EpochTrace) {
        // Test-code recordings are out of scope for the catalog.
        trace.stage("fix_stage_test_only", 0, 0, 0);
        trace.mark("fix_mark_test_only", 0, None, 0);
    }
}
