//! Fixture: ambient entropy and wall-clock reads.
use rand::rngs::OsRng;

pub fn sample() -> u64 {
    let mut rng = rand::thread_rng();
    rng.random()
}

pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
