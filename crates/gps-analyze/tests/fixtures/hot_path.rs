//! Fixture: std hash collections in hot-path library code.
use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

pub fn build() -> usize {
    let m: HashMap<u64, u64> = std::collections::HashMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn helper_maps_are_fine_in_tests() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
