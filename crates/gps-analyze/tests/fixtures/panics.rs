//! Fixture: panicking calls in library code.

pub fn read(path: &str) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    text
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller promised digits")
}

pub fn safe(s: &str) -> u64 {
    s.parse().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: u64 = "7".parse().unwrap();
        assert_eq!(v, 7);
    }
}
