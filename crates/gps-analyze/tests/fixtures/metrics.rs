//! Fixture: telemetry metric registrations for the metric-name-registry
//! rule. Linted with a synthetic catalog that documents
//! `gps_fix_documented_total`, `gps_fix_depth`, and `gps_fix_latency_ns`,
//! and carries `gps_fix_bare_name_total` with no meaning after the name.

pub fn register(reg: &Registry) {
    let _a = reg.counter("gps_fix_documented_total", Stability::Stable);
    let _b = reg.counter("gps_fix_undocumented_total", Stability::Stable);
    let _c = reg.gauge("gps_fix_depth", Stability::Timing);
    let _d = reg.histogram("gps_fix_latency_ns", Stability::Stable);
    let _e = reg.counter("gps_fix_documented_total", Stability::Stable);
    let _f = reg.counter("gps_fix_bare_name_total", Stability::Stable);
    // A read-path lookup must not count as a registration:
    let _v = snap.counter_value("gps_fix_never_registered_total");
    // Nor a name that only appears in prose: `gps_fix_comment_only_total`,
    // or in a plain string: "gps_fix_string_only_total".
    let _s = "gps_fix_string_only_total";
}

#[cfg(test)]
mod tests {
    fn test_only(reg: &Registry) {
        // Test-code registrations are out of scope for the catalog.
        reg.counter("gps_fix_test_only_total", Stability::Stable);
    }
}
