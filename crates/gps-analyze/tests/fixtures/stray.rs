//! Fixture: undocumented lint allows; also a crate root missing
//! `#![forbid(unsafe_code)]` when linted as `src/lib.rs`.

#[allow(dead_code)]
pub struct Unused;

#[allow(clippy::too_many_arguments)]
pub fn wide(_a: u8, _b: u8, _c: u8, _d: u8, _e: u8, _f: u8, _g: u8, _h: u8) {}
