//! Fixture: atomic orderings with and without justification comments.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(seq: &AtomicU64) {
    // ordering: Release pairs with the reader's Acquire load of seq,
    // making the preceding payload stores visible.
    seq.store(2, Ordering::Release);
    seq.store(4, Ordering::Release);
    seq.load(Ordering::Acquire); // ordering: same-line justification works
    let _ = seq.compare_exchange(4, 6, Ordering::AcqRel, Ordering::Relaxed);
}

pub fn compare(a: u64, b: u64) -> std::cmp::Ordering {
    a.cmp(&b)
}
