//! Fixture tests: each file under `tests/fixtures/` carries deliberate
//! violations; linting it under a synthetic repo-relative path must yield
//! exactly the expected rule IDs and line numbers — no more, no less.

use gps_analyze::{lint_source, Allowlist};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// `(rule, line)` pairs of the violations, in reported order.
fn shape(path: &str, text: &str) -> Vec<(&'static str, usize)> {
    lint_source(path, text)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn hashmap_fixture_exact_lines() {
    let text = fixture("hot_path.rs");
    assert_eq!(
        shape("crates/gps-core/src/fixture.rs", &text),
        vec![
            ("no-hashmap-hot-path", 2),
            ("no-hashmap-hot-path", 3),
            ("no-hashmap-hot-path", 6),
        ],
        "cfg(test) import on line 12 must not fire"
    );
}

#[test]
fn hashmap_rule_is_scoped_to_hot_path_crates() {
    let text = fixture("hot_path.rs");
    assert!(
        shape("crates/gps-bench/src/fixture.rs", &text).is_empty(),
        "gps-bench is not a hot-path crate"
    );
    assert!(
        shape("crates/gps-core/tests/fixture.rs", &text).is_empty(),
        "rule covers src/, not tests/"
    );
}

#[test]
fn determinism_fixture_exact_lines() {
    let text = fixture("determinism.rs");
    assert_eq!(
        shape("crates/gps-stream/src/fixture.rs", &text),
        vec![
            ("no-unseeded-rng", 2),
            ("no-unseeded-rng", 5),
            ("no-wallclock-in-determinism", 10),
        ],
        "Instant::now inside cfg(test) (line 18) must not fire"
    );
}

#[test]
fn rng_rule_skips_the_compat_shim() {
    let text = fixture("determinism.rs");
    let got = shape("crates/compat/rand/src/fixture.rs", &text);
    assert!(
        got.iter().all(|(rule, _)| *rule != "no-unseeded-rng"),
        "the rand shim defines seeding policy; got {got:?}"
    );
}

#[test]
fn panics_fixture_exact_lines() {
    let text = fixture("panics.rs");
    assert_eq!(
        shape("crates/gps-engine/src/fixture.rs", &text),
        vec![("no-unwrap-in-lib", 4), ("no-unwrap-in-lib", 9)],
        "unwrap_or_default (line 13) and test unwrap (line 20) must not fire"
    );
    assert!(
        shape("crates/gps-core/src/fixture.rs", &text).is_empty(),
        "rule applies to engine/serve only"
    );
}

#[test]
fn atomics_fixture_exact_lines() {
    let text = fixture("atomics.rs");
    assert_eq!(
        shape("crates/gps-serve/src/fixture.rs", &text),
        vec![("atomics-justified", 8), ("atomics-justified", 10)],
        "block-justified (line 7) and same-line-justified (line 9) sites \
         must pass; std::cmp::Ordering must not match"
    );
}

#[test]
fn stray_allow_fixture_exact_lines() {
    let text = fixture("stray.rs");
    assert_eq!(
        shape("crates/gps-stats/src/fixture.rs", &text),
        vec![("no-stray-allow", 4), ("no-stray-allow", 7)],
    );
    // As a crate root the same text additionally lacks forbid(unsafe_code).
    assert_eq!(
        shape("src/lib.rs", &text),
        vec![
            ("forbid-unsafe-everywhere", 1),
            ("no-stray-allow", 4),
            ("no-stray-allow", 7),
        ],
    );
    // Compat shims are exempt from the stray-allow rule.
    assert!(shape("crates/compat/rand/src/fixture.rs", &text).is_empty());
}

#[test]
fn metric_registry_fixture_exact_lines() {
    let text = fixture("metrics.rs");
    let catalog = "# Observability\n\n\
                   - `gps_fix_documented_total` — a documented demo counter.\n\
                   - `gps_fix_depth` — a documented demo gauge.\n\
                   - `gps_fix_latency_ns` — a documented demo histogram.\n\
                   - `gps_fix_bare_name_total` —\n";
    let files = vec![("crates/gps-serve/src/fixture.rs".to_owned(), text.clone())];
    let got: Vec<(usize, String)> = gps_analyze::rules::rule_metric_registry(&files, catalog)
        .into_iter()
        .map(|v| {
            assert_eq!(v.rule, "metric-name-registry");
            (v.line, v.msg)
        })
        .collect();
    assert_eq!(got.len(), 3, "{got:?}");
    // Line 8: registered but absent from the catalog.
    assert_eq!(got[0].0, 8);
    assert!(got[0].1.contains("`gps_fix_undocumented_total`"));
    assert!(got[0].1.contains("not documented"));
    // Line 11: second registration of a documented name.
    assert_eq!(got[1].0, 11);
    assert!(got[1].1.contains("duplicate registration"));
    assert!(got[1].1.contains("crates/gps-serve/src/fixture.rs:7"));
    // Line 12: cataloged, but with no meaning after the name.
    assert_eq!(got[2].0, 12);
    assert!(got[2].1.contains("`gps_fix_bare_name_total`"));
    // The documented names, the lookup helper, the prose/string mentions,
    // and the cfg(test) registration must all stay silent — covered by the
    // exact count above.
}

#[test]
fn trace_name_fixture_exact_lines() {
    let text = fixture("trace_names.rs");
    let catalog = "# Observability\n\n\
                   - `fix_stage_documented` — a documented demo stage.\n\
                   - `fix_mark_documented` — a documented demo mark.\n";
    let files = vec![("crates/gps-serve/src/fixture.rs".to_owned(), text.clone())];
    let got: Vec<(usize, String)> = gps_analyze::rules::rule_metric_registry(&files, catalog)
        .into_iter()
        .map(|v| {
            assert_eq!(v.rule, "metric-name-registry");
            (v.line, v.msg)
        })
        .collect();
    assert_eq!(got.len(), 2, "{got:?}");
    // Line 7: a stage recorded but absent from the catalog.
    assert_eq!(got[0].0, 7);
    assert!(got[0].1.contains("`fix_stage_undocumented`"));
    assert!(got[0].1.contains("not documented"));
    // Line 9: second recording site for a documented stage name.
    assert_eq!(got[1].0, 9);
    assert!(got[1].1.contains("duplicate registration"));
    assert!(got[1].1.contains("crates/gps-serve/src/fixture.rs:6"));
    // The documented stage and mark, the `span`/prose mentions, and the
    // cfg(test) recordings must all stay silent — covered by the exact
    // count above.
}

#[test]
fn trace_name_rule_is_scoped_to_crate_lib_code() {
    let text = fixture("trace_names.rs");
    // Outside crates/*/src — integration tests, examples — stage/mark
    // recordings are free-form even with an empty catalog.
    for path in ["crates/gps-serve/tests/fixture.rs", "examples/fixture.rs"] {
        let files = vec![(path.to_owned(), text.clone())];
        assert!(
            gps_analyze::rules::rule_metric_registry(&files, "").is_empty(),
            "{path} must be out of scope"
        );
    }
}

#[test]
fn metric_registry_rule_is_scoped_to_crate_lib_code() {
    let text = fixture("metrics.rs");
    let catalog = "";
    // Outside crates/*/src — integration tests, examples, the facade —
    // registrations are free-form and the rule must not fire even with an
    // empty catalog.
    for path in [
        "crates/gps-serve/tests/fixture.rs",
        "examples/fixture.rs",
        "src/lib.rs",
        "crates/compat/rand/src/fixture.rs",
    ] {
        let files = vec![(path.to_owned(), text.clone())];
        assert!(
            gps_analyze::rules::rule_metric_registry(&files, catalog).is_empty(),
            "{path} must be out of scope"
        );
    }
}

#[test]
fn masked_fixture_is_fully_clean() {
    let text = fixture("masked.rs");
    let got = shape("crates/gps-core/src/lib.rs", &text);
    assert!(
        got.is_empty(),
        "violations inside comments/strings must be masked, got {got:?}"
    );
}

#[test]
fn allowlist_waives_fixture_violations_precisely() {
    let text = fixture("panics.rs");
    let violations = lint_source("crates/gps-engine/src/fixture.rs", &text);
    let allow = Allowlist::parse(
        "no-unwrap-in-lib crates/gps-engine/src/fixture.rs contains=\"caller promised digits\" -- documented contract\n",
    )
    .unwrap();
    let source_line = |_: &str, line: usize| text.lines().nth(line - 1).map(str::to_owned);
    let left = allow.apply(violations, source_line);
    assert_eq!(left.len(), 1, "{left:?}");
    assert_eq!((left[0].rule, left[0].line), ("no-unwrap-in-lib", 4));
}

#[test]
fn stale_allowlist_entry_is_reported() {
    let allow = Allowlist::parse(
        "no-hashmap-hot-path crates/gps-core/src/nothing.rs -- was fixed long ago\n",
    )
    .unwrap();
    let out = allow.apply(Vec::new(), |_, _| None);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "stale-allowlist-entry");
    assert!(out[0].msg.contains("analyze.allow:1"));
}

#[test]
fn violation_display_is_rule_file_line() {
    let text = fixture("hot_path.rs");
    let v = &lint_source("crates/gps-core/src/fixture.rs", &text)[0];
    let shown = v.to_string();
    assert!(
        shown.starts_with("no-hashmap-hot-path crates/gps-core/src/fixture.rs:2"),
        "{shown}"
    );
}
