//! The real tree must satisfy its own invariants: this is `gps-analyze
//! check` + `gps-analyze deps` as a test, so `cargo test` alone catches
//! violations even where CI is not wired up.

use std::path::Path;

fn root() -> std::path::PathBuf {
    gps_analyze::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn workspace_lints_clean() {
    let violations = gps_analyze::lint_workspace(&root()).expect("linting the workspace");
    assert!(
        violations.is_empty(),
        "workspace violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lockfile_audit_clean() {
    let lock = std::fs::read_to_string(root().join("Cargo.lock")).expect("Cargo.lock");
    let problems = gps_analyze::deps::audit_lockfile(&lock);
    assert!(problems.is_empty(), "lockfile problems: {problems:?}");
}

#[test]
fn allowlist_parses_and_is_nonempty() {
    let text = std::fs::read_to_string(root().join(gps_analyze::ALLOWLIST_PATH))
        .expect("analyze.allow exists");
    let allow = gps_analyze::Allowlist::parse(&text).expect("allowlist parses");
    assert!(
        !allow.is_empty(),
        "the repo has documented exceptions; an empty allowlist means the file was gutted"
    );
}
