//! `gps-analyze deps`: the Cargo.lock audit.
//!
//! The workspace is offline by policy — every dependency is either a
//! first-party crate or one of the vetted compat shims (`rand`,
//! `proptest`, `criterion`) that stand in for their registry namesakes.
//! This audit fails if the lockfile ever names a package outside that set
//! (someone `cargo add`ed something the container cannot fetch) or
//! resolves one package at two versions (dependency drift the offline
//! policy cannot tolerate: there is exactly one source for each name).

use std::collections::BTreeMap;

/// One `[[package]]` stanza of a Cargo.lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockPackage {
    /// Package name.
    pub name: String,
    /// Resolved version.
    pub version: String,
    /// `source` field if present (registry/git packages have one;
    /// path-local workspace packages do not).
    pub source: Option<String>,
}

/// Packages the offline workspace is allowed to resolve: first-party
/// (`gps-*` plus the facade) and the three compat shims.
pub fn is_vetted(p: &LockPackage) -> bool {
    let first_party = p.name == "graph-priority-sampling" || p.name.starts_with("gps-");
    let compat_shim = matches!(p.name.as_str(), "rand" | "proptest" | "criterion");
    // Every vetted package is path-local: a registry or git source on any
    // name — even a vetted one — means the lockfile escaped the container.
    (first_party || compat_shim) && p.source.is_none()
}

/// Parses the `[[package]]` stanzas out of Cargo.lock text (std-only; the
/// lockfile grammar used is the flat `key = "value"` subset cargo emits).
pub fn parse_lockfile(text: &str) -> Vec<LockPackage> {
    let mut packages = Vec::new();
    let mut current: Option<LockPackage> = None;
    for raw in text.lines() {
        let line = raw.trim();
        if line == "[[package]]" {
            if let Some(p) = current.take() {
                packages.push(p);
            }
            current = Some(LockPackage {
                name: String::new(),
                version: String::new(),
                source: None,
            });
            continue;
        }
        if line.starts_with('[') {
            // Some other table (e.g. `[metadata]`) ends the stanza.
            if let Some(p) = current.take() {
                packages.push(p);
            }
            continue;
        }
        let Some(p) = current.as_mut() else { continue };
        if let Some((key, value)) = line.split_once('=') {
            let value = value.trim().trim_matches('"').to_owned();
            match key.trim() {
                "name" => p.name = value,
                "version" => p.version = value,
                "source" => p.source = Some(value),
                _ => {}
            }
        }
    }
    if let Some(p) = current.take() {
        packages.push(p);
    }
    packages
}

/// Audits lockfile text: every finding is one human-readable problem line.
/// Empty result ⇒ the lockfile is clean.
pub fn audit_lockfile(text: &str) -> Vec<String> {
    let packages = parse_lockfile(text);
    let mut problems = Vec::new();
    if packages.is_empty() {
        problems.push("Cargo.lock contains no [[package]] stanzas (corrupt or empty)".into());
        return problems;
    }
    let mut versions: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for p in &packages {
        versions.entry(&p.name).or_default().push(&p.version);
        if !is_vetted(p) {
            let source = p.source.as_deref().unwrap_or("path-local");
            problems.push(format!(
                "unvetted package `{} {}` ({source}) — the offline set is gps-*, the facade, and the rand/proptest/criterion shims",
                p.name, p.version
            ));
        }
    }
    for (name, vs) in versions {
        if vs.len() > 1 {
            problems.push(format!("duplicate versions of `{name}`: {}", vs.join(", ")));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
version = 4

[[package]]
name = "gps-core"
version = "0.1.0"
dependencies = ["gps-graph"]

[[package]]
name = "rand"
version = "0.1.0"
"#;

    #[test]
    fn clean_lockfile_passes() {
        assert!(audit_lockfile(CLEAN).is_empty());
    }

    #[test]
    fn registry_source_fails_even_on_vetted_name() {
        let text = format!(
            "{CLEAN}\n[[package]]\nname = \"rand\"\nversion = \"0.8.5\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n"
        );
        let problems = audit_lockfile(&text);
        // The second `rand` is both unvetted (registry source) and a
        // duplicate version.
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("unvetted"));
        assert!(problems[1].contains("duplicate versions of `rand`"));
    }

    #[test]
    fn unknown_package_fails() {
        let text = format!("{CLEAN}\n[[package]]\nname = \"serde\"\nversion = \"1.0.0\"\n");
        let problems = audit_lockfile(&text);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("`serde 1.0.0`"));
    }

    #[test]
    fn empty_lockfile_is_a_problem() {
        assert_eq!(audit_lockfile("version = 4\n").len(), 1);
    }

    #[test]
    fn parser_reads_source_field() {
        let pkgs = parse_lockfile(
            "[[package]]\nname = \"x\"\nversion = \"1\"\nsource = \"git+https://e\"\n",
        );
        assert_eq!(pkgs.len(), 1);
        assert_eq!(pkgs[0].source.as_deref(), Some("git+https://e"));
    }
}
