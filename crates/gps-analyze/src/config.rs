//! The allowlist: documented, individually-matched exceptions to lint
//! rules.
//!
//! Format (one entry per line; `#` starts a comment):
//!
//! ```text
//! <rule-id> <repo-relative-path> [line=<N> | contains="<substr>"] -- <reason>
//! ```
//!
//! * With neither matcher the entry waives the rule for the whole file.
//! * `line=N` waives exactly that (1-based) line.
//! * `contains="…"` waives any violating line whose source text contains
//!   the substring — robust to line drift, self-documenting in diffs.
//!
//! The reason is mandatory: an exception nobody can explain is a violation
//! with extra steps. Entries that match nothing are themselves reported
//! (`stale-allowlist-entry`), so the file can only shrink as the code
//! improves — it never silently rots.

use crate::rules::{Violation, RULE_IDS};

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry waives.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// Optional 1-based line matcher.
    pub line: Option<usize>,
    /// Optional source-substring matcher.
    pub contains: Option<String>,
    /// Why the exception is sound (mandatory).
    pub reason: String,
    /// Line of the allowlist file the entry came from (for diagnostics).
    pub at: usize,
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

/// Splits the leading whitespace-delimited word off `spec`.
fn take_word(spec: &mut &str) -> Option<String> {
    let trimmed = spec.trim_start();
    if trimmed.is_empty() {
        return None;
    }
    let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
    let (word, rest) = trimmed.split_at(end);
    *spec = rest.trim_start();
    Some(word.to_owned())
}

impl Allowlist {
    /// Parses allowlist text; returns `Err` with a message per malformed
    /// line (unknown rule IDs are malformed — typos must not silently
    /// waive nothing).
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, reason) = line
                .split_once("--")
                .ok_or_else(|| format!("allowlist line {}: missing `-- reason`", idx + 1))?;
            let reason = reason.trim();
            if reason.is_empty() {
                return Err(format!("allowlist line {}: empty reason", idx + 1));
            }
            let mut spec = spec.trim();
            let rule = take_word(&mut spec)
                .ok_or_else(|| format!("allowlist line {}: missing rule id", idx + 1))?;
            if !RULE_IDS.contains(&rule.as_str()) {
                return Err(format!("allowlist line {}: unknown rule `{rule}`", idx + 1));
            }
            let path = take_word(&mut spec)
                .ok_or_else(|| format!("allowlist line {}: missing path", idx + 1))?;
            let mut entry = AllowEntry {
                rule,
                path,
                line: None,
                contains: None,
                reason: reason.to_owned(),
                at: idx + 1,
            };
            // The rest of the spec is at most one matcher; `contains="…"`
            // values may hold spaces, so strip the quotes rather than
            // splitting on whitespace.
            if let Some(n) = spec.strip_prefix("line=") {
                let n = n.trim();
                entry.line =
                    Some(n.parse().map_err(|_| {
                        format!("allowlist line {}: bad line number `{n}`", idx + 1)
                    })?);
            } else if let Some(s) = spec.strip_prefix("contains=") {
                let s = s.trim().trim_matches('"');
                if s.is_empty() {
                    return Err(format!("allowlist line {}: empty contains=", idx + 1));
                }
                entry.contains = Some(s.to_owned());
            } else if !spec.is_empty() {
                return Err(format!(
                    "allowlist line {}: unknown matcher `{spec}`",
                    idx + 1
                ));
            }
            entries.push(entry);
        }
        Ok(Allowlist { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Filters `violations` through the allowlist. Returns the surviving
    /// violations plus one synthetic `stale-allowlist-entry` violation for
    /// every entry that matched nothing.
    ///
    /// `source_line` resolves `(path, 1-based line)` to the raw source text
    /// for `contains=` matching.
    pub fn apply<F>(&self, violations: Vec<Violation>, source_line: F) -> Vec<Violation>
    where
        F: Fn(&str, usize) -> Option<String>,
    {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        for v in violations {
            let waived = self.entries.iter().enumerate().any(|(i, e)| {
                let hit = e.rule == v.rule
                    && e.path == v.path
                    && e.line.is_none_or(|n| n == v.line)
                    && e.contains.as_ref().is_none_or(|s| {
                        source_line(&v.path, v.line).is_some_and(|text| text.contains(s))
                    });
                if hit {
                    used[i] = true;
                }
                hit
            });
            if !waived {
                kept.push(v);
            }
        }
        for (e, used) in self.entries.iter().zip(used) {
            if !used {
                kept.push(Violation {
                    rule: "stale-allowlist-entry",
                    path: e.path.clone(),
                    line: e.line.unwrap_or(0),
                    msg: format!(
                        "allowlist entry (analyze.allow:{}) for `{}` matched no violation — remove it",
                        e.at, e.rule
                    ),
                });
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: usize) -> Violation {
        Violation {
            rule,
            path: path.into(),
            line,
            msg: String::new(),
        }
    }

    #[test]
    fn file_level_entry_waives_and_is_used() {
        let a = Allowlist::parse(
            "no-wallclock-in-determinism crates/gps-bench/src/perf.rs -- bench timing module\n",
        )
        .unwrap();
        let out = a.apply(
            vec![v(
                "no-wallclock-in-determinism",
                "crates/gps-bench/src/perf.rs",
                12,
            )],
            |_, _| None,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn contains_matcher_waives_only_matching_lines() {
        let a = Allowlist::parse(
            "no-unwrap-in-lib crates/gps-engine/src/engine.rs contains=\"worker panicked\" -- panic contract\n",
        )
        .unwrap();
        let src = |_: &str, line: usize| {
            Some(if line == 5 {
                "x.join().expect(\"shard worker panicked\");".to_owned()
            } else {
                "y.unwrap();".to_owned()
            })
        };
        let out = a.apply(
            vec![
                v("no-unwrap-in-lib", "crates/gps-engine/src/engine.rs", 5),
                v("no-unwrap-in-lib", "crates/gps-engine/src/engine.rs", 9),
            ],
            src,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 9);
    }

    #[test]
    fn unused_entry_is_reported_stale() {
        let a = Allowlist::parse("no-stray-allow crates/gps-core/src/x.rs -- obsolete\n").unwrap();
        let out = a.apply(vec![], |_, _| None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "stale-allowlist-entry");
    }

    #[test]
    fn unknown_rule_is_a_parse_error() {
        assert!(Allowlist::parse("no-such-rule a/b.rs -- why\n").is_err());
    }

    #[test]
    fn missing_reason_is_a_parse_error() {
        assert!(Allowlist::parse("no-stray-allow a/b.rs\n").is_err());
        assert!(Allowlist::parse("no-stray-allow a/b.rs --   \n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let a = Allowlist::parse("# header\n\n# another\n").unwrap();
        assert!(a.is_empty());
    }
}
