//! The loom-lite interleaving checker.
//!
//! Three layers:
//!
//! * [`machine`] — a register bytecode over atomic variables with a
//!   release/acquire view-based memory model (the "sequentially
//!   consistent interleaving plus reordering window" semantics);
//! * [`mod@explore`] — exhaustive schedule enumeration, optionally
//!   preemption-bounded for the wide 2×2 configurations;
//! * [`models`] — the `EpochCell` seqlock and `Board` gate protocols
//!   transliterated into that bytecode, with per-ordering weakening knobs
//!   so tests can prove each `Ordering::` site is load-bearing.
//!
//! This is not loom (no full C11 axioms, no modification-order
//! exploration beyond per-variable coherence, no SeqCst) and not TSan (no
//! real codegen): it checks *protocol* correctness of the models, while
//! Miri/TSan CI jobs check the real code. `docs/verification.md` draws
//! the exact line.

pub mod explore;
pub mod machine;
pub mod models;

pub use explore::{explore, explore_with_final, Bound, Explored};
pub use machine::{Machine, Mo, ModelViolation};
pub use models::{board_model, execute, seqlock_model, standard_runs, BoardSpec, Run, SeqlockSpec};
