//! Exhaustive schedule exploration with optional preemption bounding.
//!
//! The explorer walks every interleaving of the model's visible steps by
//! depth-first search, branching both on *which thread steps next* and on
//! *which write a load observes* (the memory model's value
//! nondeterminism). A schedule is one complete execution — a leaf of that
//! tree — so the schedule count is exact, deterministic, and reproducible.
//!
//! Full exhaustion is feasible for the small configurations (1×1, 1×2).
//! For 2 writers × 2 readers the unrestricted tree is astronomically wide,
//! so larger configurations run under a **preemption bound**: switching
//! away from a thread that could still run costs one unit of a fixed
//! budget, while switches at blocking points (mutex) or after a halt are
//! free. This is the CHESS result: almost all concurrency bugs manifest
//! within a small number of preemptions, and the bounded search is still
//! exhaustive *within the bound* — every schedule with at most `k`
//! preemptions is enumerated. `docs/verification.md` spells out what this
//! does and does not guarantee versus loom and TSan.

use super::machine::{Machine, ModelViolation};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Bound {
    /// Maximum preemptive context switches per schedule (`u32::MAX` for a
    /// full unbounded exploration).
    pub preemptions: u32,
    /// Hard cap on schedules, as a runaway guard. Hitting it sets
    /// [`Explored::truncated`] — "exhaustive" claims must assert it stayed
    /// unset.
    pub max_schedules: u64,
}

impl Bound {
    /// Unbounded (fully exhaustive) exploration with a safety cap.
    pub fn exhaustive() -> Bound {
        Bound {
            preemptions: u32::MAX,
            max_schedules: 50_000_000,
        }
    }

    /// Preemption-bounded exploration.
    pub fn preemptions(k: u32) -> Bound {
        Bound {
            preemptions: k,
            max_schedules: 50_000_000,
        }
    }
}

/// Exploration result.
#[derive(Debug)]
pub struct Explored {
    /// Complete executions enumerated.
    pub schedules: u64,
    /// Invariant violations found (deduplicated by thread + message; each
    /// carries one witness schedule).
    pub violations: Vec<ModelViolation>,
    /// Whether the schedule cap cut the search short.
    pub truncated: bool,
}

impl Explored {
    /// True iff no invariant failed and no deadlock was found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Explores every schedule of `machine` within `bound`.
pub fn explore(machine: &Machine, bound: Bound) -> Explored {
    explore_with_final(machine, bound, &|_| Ok(()))
}

/// Like [`explore`], additionally running `final_check` against the
/// memory at the end of every completed (all-halted) schedule — for
/// invariants only the quiescent state can express, like "no publication
/// was lost".
pub fn explore_with_final(
    machine: &Machine,
    bound: Bound,
    final_check: &dyn Fn(&Machine) -> Result<(), String>,
) -> Explored {
    let mut out = Explored {
        schedules: 0,
        violations: Vec::new(),
        truncated: false,
    };
    let mut trace: Vec<(usize, usize)> = Vec::new();
    let mut cx = Cx {
        bound,
        final_check,
        out: &mut out,
    };
    dfs(machine, None, bound.preemptions, &mut cx, &mut trace);
    out
}

struct Cx<'a> {
    bound: Bound,
    final_check: &'a dyn Fn(&Machine) -> Result<(), String>,
    out: &'a mut Explored,
}

fn record(out: &mut Explored, mut v: ModelViolation, trace: &[(usize, usize)]) {
    v.schedule = trace.to_vec();
    if !out
        .violations
        .iter()
        .any(|e| e.thread == v.thread && e.what == v.what)
    {
        out.violations.push(v);
    }
}

fn dfs(
    m: &Machine,
    last: Option<usize>,
    budget: u32,
    cx: &mut Cx,
    trace: &mut Vec<(usize, usize)>,
) {
    if cx.out.truncated {
        return;
    }
    let n = m.nthreads();
    let enabled: Vec<usize> = (0..n).filter(|&t| m.enabled(t)).collect();
    if enabled.is_empty() {
        cx.out.schedules += 1;
        if cx.out.schedules >= cx.bound.max_schedules {
            cx.out.truncated = true;
        }
        if !m.all_halted() {
            record(
                cx.out,
                ModelViolation {
                    thread: "<scheduler>".into(),
                    what: "deadlock: blocked threads with no runnable peer".into(),
                    schedule: Vec::new(),
                },
                trace,
            );
        } else if let Err(msg) = (cx.final_check)(m) {
            record(
                cx.out,
                ModelViolation {
                    thread: "<final-state>".into(),
                    what: msg,
                    schedule: Vec::new(),
                },
                trace,
            );
        }
        return;
    }
    for &t in &enabled {
        // A switch away from a still-runnable thread is a preemption;
        // continuing the same thread, or scheduling after the previous
        // thread blocked/halted, is free.
        let preempts = match last {
            Some(prev) => t != prev && m.enabled(prev),
            None => false,
        };
        let budget = match (preempts, budget) {
            (false, b) => b,
            (true, 0) => continue,
            (true, b) => {
                if b == u32::MAX {
                    b
                } else {
                    b - 1
                }
            }
        };
        for choice in 0..m.choices(t) {
            let mut child = m.clone();
            trace.push((t, choice));
            match child.step(t, choice) {
                Ok(()) => dfs(&child, Some(t), budget, cx, trace),
                Err(v) => {
                    // A failed invariant ends this execution; it still
                    // counts as one (violating) schedule.
                    record(cx.out, v, trace);
                    cx.out.schedules += 1;
                    if cx.out.schedules >= cx.bound.max_schedules {
                        cx.out.truncated = true;
                    }
                }
            }
            trace.pop();
            if cx.out.truncated {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::machine::{Asm, Instr, Mo};

    /// Two independent single-store threads: exactly C(2,1)·(value
    /// choices)… with no loads there are exactly 2 interleavings.
    #[test]
    fn two_independent_stores_have_two_schedules() {
        let mk = |name: &str, var: u8| {
            let mut a = Asm::new(name);
            a.op(Instr::Imm { dst: 0, val: 1 })
                .op(Instr::Store {
                    var,
                    src: 0,
                    mo: Mo::Relaxed,
                })
                .op(Instr::Halt);
            a.finish()
        };
        let m = Machine::new(vec![mk("a", 0), mk("b", 1)], 2).unwrap();
        let r = explore(&m, Bound::exhaustive());
        assert_eq!(r.schedules, 2);
        assert!(r.clean());
        assert!(!r.truncated);
    }

    /// The message-passing litmus test: relaxed everywhere finds the
    /// stale-payload execution; release/acquire does not.
    #[test]
    fn message_passing_litmus() {
        let build = |mo_store: Mo, mo_load: Mo| {
            let mut w = Asm::new("writer");
            w.op(Instr::Imm { dst: 0, val: 42 })
                .op(Instr::Store {
                    var: 1,
                    src: 0,
                    mo: Mo::Relaxed,
                })
                .op(Instr::Imm { dst: 1, val: 1 })
                .op(Instr::Store {
                    var: 0,
                    src: 1,
                    mo: mo_store,
                })
                .op(Instr::Halt);
            let mut r = Asm::new("reader");
            let done = r.label();
            // if flag == 1 then payload must be 42
            r.op(Instr::Load {
                dst: 0,
                var: 0,
                mo: mo_load,
            })
            .op(Instr::Imm { dst: 2, val: 1 });
            r.branch(|to| Instr::Bne { a: 0, b: 2, to }, done);
            r.op(Instr::Load {
                dst: 1,
                var: 1,
                mo: Mo::Relaxed,
            })
            .op(Instr::Imm { dst: 3, val: 42 })
            .op(Instr::CkEq {
                a: 1,
                b: 3,
                what: "stale payload behind set flag",
            });
            r.bind(done);
            r.op(Instr::Halt);
            Machine::new(vec![w.finish(), r.finish()], 2).unwrap()
        };
        let relaxed = explore(&build(Mo::Relaxed, Mo::Relaxed), Bound::exhaustive());
        assert!(!relaxed.clean(), "relaxed MP must exhibit the stale read");
        let strong = explore(&build(Mo::Release, Mo::Acquire), Bound::exhaustive());
        assert!(
            strong.clean(),
            "rel/acq MP must not: {:?}",
            strong.violations
        );
    }

    /// Preemption bound 0 still interleaves at blocking points, and the
    /// bounded schedule set is a subset of the exhaustive one.
    #[test]
    fn preemption_bound_restricts_schedules() {
        let mk = |name: &str| {
            let mut a = Asm::new(name);
            a.op(Instr::Lock)
                .op(Instr::Imm { dst: 0, val: 1 })
                .op(Instr::Store {
                    var: 0,
                    src: 0,
                    mo: Mo::Relaxed,
                })
                .op(Instr::Unlock)
                .op(Instr::Halt);
            a.finish()
        };
        let m = Machine::new(vec![mk("a"), mk("b")], 1).unwrap();
        let full = explore(&m, Bound::exhaustive());
        let zero = explore(&m, Bound::preemptions(0));
        assert!(zero.schedules <= full.schedules);
        assert!(zero.schedules >= 2, "lock order still both ways");
        assert!(full.clean() && zero.clean());
    }
}
