//! The two protocols under check, as explicit state machines: the
//! `EpochCell` seqlock (gps-serve/src/epoch.rs) and the Board
//! publication/watermark gate (gps-serve/src/board.rs).
//!
//! Each model is built from a *spec* whose fields mirror the orderings and
//! structure of the real code; the correct spec reproduces the source
//! exactly, and tests weaken one field at a time to prove the checker
//! catches the bug class each ordering exists to prevent.

use super::explore::{explore, explore_with_final, Bound, Explored};
use super::machine::{Asm, Instr, Machine, Mo, Prog};

// ---------------------------------------------------------------- seqlock

/// Seqlock variables: the sequence word and two payload words.
const SEQ: u8 = 0;
const W0: u8 = 1;
const W1: u8 = 2;

/// Orderings and structure of the seqlock, field-for-field against
/// `EpochCell::{publish, load}`.
#[derive(Clone, Copy, Debug)]
pub struct SeqlockSpec {
    /// `fence(Release)` between the odd sequence store and the payload
    /// stores (epoch.rs publish step 2).
    pub writer_release_fence: bool,
    /// Ordering of the final (even) sequence store (`Release` in the real
    /// code).
    pub final_seq_store: Mo,
    /// Ordering of the reader's first sequence load (`Acquire`).
    pub reader_first_load: Mo,
    /// `fence(Acquire)` between the payload copy and the recheck.
    pub reader_acquire_fence: bool,
}

impl SeqlockSpec {
    /// The protocol as implemented in `gps-serve/src/epoch.rs`.
    pub fn correct() -> SeqlockSpec {
        SeqlockSpec {
            writer_release_fence: true,
            final_seq_store: Mo::Release,
            reader_first_load: Mo::Acquire,
            reader_acquire_fence: true,
        }
    }
}

/// Payload linkage: for an epoch whose even sequence is `s`, `w0 = 3·s`
/// and `w1 = 7·s` — so any cross-epoch mix of payload words, or a payload
/// not matching the validated sequence, is detectable by arithmetic.
fn seqlock_writer(i: usize, spec: &SeqlockSpec) -> Prog {
    let mut a = Asm::new(format!("writer-{i}"));
    // Writers are exclusive in the real protocol (the board publishes
    // under its mutex), so the model serializes them the same way.
    a.op(Instr::Lock);
    // ordering-model: seq.load(Relaxed) — exclusivity makes it exact.
    a.op(Instr::Load {
        dst: 0,
        var: SEQ,
        mo: Mo::Relaxed,
    });
    // seq.store(s + 1, Relaxed): mark write-in-progress (odd).
    a.op(Instr::Addi {
        dst: 1,
        src: 0,
        imm: 1,
    });
    a.op(Instr::Store {
        var: SEQ,
        src: 1,
        mo: Mo::Relaxed,
    });
    if spec.writer_release_fence {
        a.op(Instr::Fence { mo: Mo::Release });
    }
    // Payload for the next even sequence s+2.
    a.op(Instr::Addi {
        dst: 2,
        src: 0,
        imm: 2,
    });
    a.op(Instr::Muli {
        dst: 3,
        src: 2,
        imm: 3,
    });
    a.op(Instr::Muli {
        dst: 4,
        src: 2,
        imm: 7,
    });
    a.op(Instr::Store {
        var: W0,
        src: 3,
        mo: Mo::Relaxed,
    });
    a.op(Instr::Store {
        var: W1,
        src: 4,
        mo: Mo::Relaxed,
    });
    // seq.store(s + 2, Release): publish.
    a.op(Instr::Store {
        var: SEQ,
        src: 2,
        mo: spec.final_seq_store,
    });
    a.op(Instr::Unlock);
    a.op(Instr::Halt);
    a.finish()
}

fn seqlock_reader(i: usize, spec: &SeqlockSpec, attempts: u64, retries: u64) -> Prog {
    let mut a = Asm::new(format!("reader-{i}"));
    // r7: last validated sequence; r5: attempts left; r6: retry budget;
    // r10: constant zero.
    a.op(Instr::Imm { dst: 7, val: 0 });
    a.op(Instr::Imm {
        dst: 5,
        val: attempts,
    });
    a.op(Instr::Imm {
        dst: 6,
        val: retries,
    });
    a.op(Instr::Imm { dst: 10, val: 0 });
    let attempt = a.label();
    let retry = a.label();
    let done = a.label();
    a.bind(attempt);
    // s1 = seq.load(Acquire)
    a.op(Instr::Load {
        dst: 0,
        var: SEQ,
        mo: spec.reader_first_load,
    });
    // Odd ⇒ a publication is in flight: retry.
    a.branch(|to| Instr::Bodd { src: 0, to }, retry);
    // Copy the payload (relaxed word loads, as in the real code).
    a.op(Instr::Load {
        dst: 1,
        var: W0,
        mo: Mo::Relaxed,
    });
    a.op(Instr::Load {
        dst: 2,
        var: W1,
        mo: Mo::Relaxed,
    });
    if spec.reader_acquire_fence {
        a.op(Instr::Fence { mo: Mo::Acquire });
    }
    // Recheck: an unchanged sequence validates the copy.
    a.op(Instr::Load {
        dst: 3,
        var: SEQ,
        mo: Mo::Relaxed,
    });
    a.branch(|to| Instr::Bne { a: 3, b: 0, to }, retry);
    // Validated ⇒ the epoch invariants must hold.
    a.op(Instr::Muli {
        dst: 8,
        src: 1,
        imm: 7,
    });
    a.op(Instr::Muli {
        dst: 9,
        src: 2,
        imm: 3,
    });
    a.op(Instr::CkEq {
        a: 8,
        b: 9,
        what: "torn read: payload words from different epochs",
    });
    a.op(Instr::Muli {
        dst: 8,
        src: 0,
        imm: 3,
    });
    a.op(Instr::CkEq {
        a: 1,
        b: 8,
        what: "torn read: validated payload does not match its sequence",
    });
    a.op(Instr::CkLe {
        a: 7,
        b: 0,
        what: "sequence regressed between validated reads",
    });
    a.op(Instr::Addi {
        dst: 7,
        src: 0,
        imm: 0,
    });
    a.op(Instr::Addi {
        dst: 5,
        src: 5,
        imm: -1,
    });
    a.branch(|to| Instr::Bne { a: 5, b: 10, to }, attempt);
    a.branch(|to| Instr::Jmp { to }, done);
    a.bind(retry);
    a.op(Instr::Addi {
        dst: 6,
        src: 6,
        imm: -1,
    });
    a.branch(|to| Instr::Bne { a: 6, b: 10, to }, attempt);
    a.bind(done);
    a.op(Instr::Halt);
    a.finish()
}

/// Builds the seqlock model: `writers` publishers (serialized, as under
/// the board mutex) racing `readers` lock-free readers, each attempting
/// `attempts` validated reads with a retry budget.
pub fn seqlock_model(
    spec: &SeqlockSpec,
    writers: usize,
    readers: usize,
    attempts: u64,
    retries: u64,
) -> Machine {
    let mut progs = Vec::new();
    for i in 0..writers {
        progs.push(seqlock_writer(i, spec));
    }
    for i in 0..readers {
        progs.push(seqlock_reader(i, spec, attempts, retries));
    }
    Machine::new(progs, 3).expect("seqlock model construction cannot fail")
}

// ------------------------------------------------------------------ board

/// Board variables: two per-shard report slots and the published
/// version/watermark pair.
const REP0: u8 = 0;
const REP1: u8 = 1;
const PUBV: u8 = 2;
const PUBW: u8 = 3;

/// Structure of the Board protocol (`Board::publish_report`): merge under
/// the mutex, gate publication until every shard has reported, publish
/// watermark-then-version with a release store.
#[derive(Clone, Copy, Debug)]
pub struct BoardSpec {
    /// Publication gated until both shards have reported (board.rs's
    /// `per_shard.iter().all(Option::is_some)`).
    pub gate_on_all_shards: bool,
    /// Reporters merge and publish under the board mutex.
    pub merge_under_mutex: bool,
    /// Ordering of the version store that publishes the epoch (`Release`
    /// in the real code — the seqlock's even store, collapsed to one
    /// word here; pair-tearing itself is the seqlock model's job).
    pub publish_store: Mo,
}

impl BoardSpec {
    /// The protocol as implemented in `gps-serve/src/board.rs`.
    pub fn correct() -> BoardSpec {
        BoardSpec {
            gate_on_all_shards: true,
            merge_under_mutex: true,
            publish_store: Mo::Release,
        }
    }
}

/// Watermarks each shard reports, in order. Strictly positive and
/// monotone per shard, so `0` in a report slot means "not yet reported"
/// — exactly the board's `Option::is_none`.
const SHARD_REPORTS: [[u64; 2]; 2] = [[10, 30], [5, 20]];

/// Smallest full-merge watermark: both shards' first reports combined. A
/// published watermark below this proves the gate was bypassed.
pub const BOARD_FLOOR: u64 = SHARD_REPORTS[0][0] + SHARD_REPORTS[1][0];

fn board_reporter(i: usize, spec: &BoardSpec) -> Prog {
    let my_rep = if i == 0 { REP0 } else { REP1 };
    let mut a = Asm::new(format!("reporter-{i}"));
    a.op(Instr::Imm { dst: 10, val: 0 });
    for wm in SHARD_REPORTS[i] {
        if spec.merge_under_mutex {
            a.op(Instr::Lock);
        }
        // state.per_shard[i] = Some(report) — relaxed store: the mutex
        // carries visibility to the next reporter.
        a.op(Instr::Imm { dst: 0, val: wm });
        a.op(Instr::Store {
            var: my_rep,
            src: 0,
            mo: Mo::Relaxed,
        });
        let skip = a.label();
        a.op(Instr::Load {
            dst: 1,
            var: REP0,
            mo: Mo::Relaxed,
        });
        a.op(Instr::Load {
            dst: 2,
            var: REP1,
            mo: Mo::Relaxed,
        });
        if spec.gate_on_all_shards {
            // Publication gated until every shard has reported.
            a.branch(|to| Instr::Beq { a: 1, b: 10, to }, skip);
            a.branch(|to| Instr::Beq { a: 2, b: 10, to }, skip);
        }
        // version += 1; watermark = Σ reports; store watermark then
        // version (the version store is what readers synchronize on).
        a.op(Instr::Load {
            dst: 3,
            var: PUBV,
            mo: Mo::Relaxed,
        });
        a.op(Instr::Addi {
            dst: 3,
            src: 3,
            imm: 1,
        });
        a.op(Instr::Add { dst: 4, a: 1, b: 2 });
        a.op(Instr::Store {
            var: PUBW,
            src: 4,
            mo: Mo::Relaxed,
        });
        a.op(Instr::Store {
            var: PUBV,
            src: 3,
            mo: spec.publish_store,
        });
        a.bind(skip);
        if spec.merge_under_mutex {
            a.op(Instr::Unlock);
        }
    }
    a.op(Instr::Halt);
    a.finish()
}

fn board_reader(i: usize, attempts: u64) -> Prog {
    let mut a = Asm::new(format!("query-{i}"));
    // r7/r8: last seen version/watermark; r5: attempts; r9: gate floor;
    // r10: zero.
    a.op(Instr::Imm { dst: 7, val: 0 });
    a.op(Instr::Imm { dst: 8, val: 0 });
    a.op(Instr::Imm {
        dst: 5,
        val: attempts,
    });
    a.op(Instr::Imm {
        dst: 9,
        val: BOARD_FLOOR,
    });
    a.op(Instr::Imm { dst: 10, val: 0 });
    let poll = a.label();
    let next = a.label();
    a.bind(poll);
    a.op(Instr::Load {
        dst: 0,
        var: PUBV,
        mo: Mo::Acquire,
    });
    // version == 0 ⇒ nothing published yet.
    a.branch(|to| Instr::Beq { a: 0, b: 10, to }, next);
    a.op(Instr::Load {
        dst: 1,
        var: PUBW,
        mo: Mo::Relaxed,
    });
    a.op(Instr::CkLe {
        a: 9,
        b: 1,
        what: "published watermark below the full-merge floor (gate bypassed)",
    });
    a.op(Instr::CkLe {
        a: 7,
        b: 0,
        what: "published version regressed",
    });
    a.op(Instr::CkLe {
        a: 8,
        b: 1,
        what: "published watermark regressed",
    });
    a.op(Instr::Addi {
        dst: 7,
        src: 0,
        imm: 0,
    });
    a.op(Instr::Addi {
        dst: 8,
        src: 1,
        imm: 0,
    });
    a.bind(next);
    a.op(Instr::Addi {
        dst: 5,
        src: 5,
        imm: -1,
    });
    a.branch(|to| Instr::Bne { a: 5, b: 10, to }, poll);
    a.op(Instr::Halt);
    a.finish()
}

/// Builds the board model: two shard reporters (two reports each) racing
/// `readers` queriers, each polling `attempts` times.
pub fn board_model(spec: &BoardSpec, readers: usize, attempts: u64) -> Machine {
    let mut progs = vec![board_reporter(0, spec), board_reporter(1, spec)];
    for i in 0..readers {
        progs.push(board_reader(i, attempts));
    }
    Machine::new(progs, 4).expect("board model construction cannot fail")
}

/// Final-state invariants of the board model, checked after a full
/// exploration of the *correct* spec (every schedule ends with both
/// shards fully reported, so the last publication is total):
/// the final watermark is the full sum, and the version counted every
/// publication (no lost update under the mutex).
pub fn board_final_ok(m: &Machine) -> Result<(), String> {
    let want: u64 = SHARD_REPORTS.iter().map(|r| r[1]).sum();
    let got = m.mem.latest(PUBW as usize);
    if got != want {
        return Err(format!("final watermark {got}, want {want}"));
    }
    let publishes = m.mem.writes(PUBV as usize) as u64;
    let version = m.mem.latest(PUBV as usize);
    if version != publishes {
        return Err(format!(
            "final version {version} but {publishes} publications (lost update)"
        ));
    }
    Ok(())
}

// ------------------------------------------------------------ harness

/// A quiescent-state invariant run against the memory after every
/// completed schedule.
pub type FinalCheck = fn(&Machine) -> Result<(), String>;

/// One named exploration: a model, its bound, and an optional final-state
/// invariant.
pub struct Run {
    /// Display name for reports.
    pub name: &'static str,
    /// The machine to explore.
    pub machine: Machine,
    /// The exploration bound.
    pub bound: Bound,
    /// Quiescent-state invariant, if the model has one.
    pub final_check: Option<FinalCheck>,
}

/// The standard verification suite over the *correct* specs: full
/// exhaustion on the small configurations, preemption-bounded exhaustion
/// on 2 writers × 2 readers.
pub fn standard_runs() -> Vec<Run> {
    let sl = SeqlockSpec::correct();
    let bd = BoardSpec::correct();
    vec![
        Run {
            name: "seqlock 1w×1r (full)",
            machine: seqlock_model(&sl, 1, 1, 2, 2),
            bound: Bound::exhaustive(),
            final_check: None,
        },
        Run {
            name: "seqlock 1w×2r (≤2 preemptions)",
            machine: seqlock_model(&sl, 1, 2, 1, 1),
            bound: Bound::preemptions(2),
            final_check: None,
        },
        Run {
            name: "seqlock 2w×2r (≤1 preemption)",
            machine: seqlock_model(&sl, 2, 2, 1, 1),
            bound: Bound::preemptions(1),
            final_check: None,
        },
        Run {
            name: "board 2rep×1q (full)",
            machine: board_model(&bd, 1, 2),
            bound: Bound::exhaustive(),
            final_check: Some(board_final_ok),
        },
        Run {
            name: "board 2rep×2q (≤2 preemptions)",
            machine: board_model(&bd, 2, 2),
            bound: Bound::preemptions(2),
            final_check: Some(board_final_ok),
        },
    ]
}

/// Executes a [`Run`].
pub fn execute(run: &Run) -> Explored {
    match run.final_check {
        Some(check) => explore_with_final(&run.machine, run.bound, &check),
        None => explore(&run.machine, run.bound),
    }
}
