//! The execution machine: a tiny register bytecode over atomic variables,
//! with a release/acquire *view* memory model.
//!
//! # Memory model
//!
//! This is the standard operational view-based presentation of C11
//! release/acquire (a "sequentially consistent interleaving plus a
//! reordering window": threads interleave one step at a time, but a load
//! may return any sufficiently-recent write, which is exactly how
//! store-buffer and read-reorder effects surface to a program):
//!
//! * Every shared variable keeps its full write history. Write `0` is the
//!   initial zero.
//! * Every thread carries a **view**: for each variable, the index of the
//!   oldest write it may still observe.
//! * A **relaxed load** returns *any* write no older than the thread's
//!   view — later writes by other threads need not be seen, stale values
//!   within the window are fair game. Per-variable coherence is enforced
//!   by a `seen` floor: a thread never re-reads something older than what
//!   it already read.
//! * A **release store** attaches the writer's entire current view to the
//!   write (its *message*). An **acquire load** that reads the write joins
//!   that message into the reader's view — establishing the happens-before
//!   edge.
//! * A **release fence** makes *subsequent* relaxed stores carry the view
//!   captured at the fence; an **acquire fence** retroactively upgrades
//!   *prior* relaxed loads, joining the messages of everything read since.
//!   This is precisely the seqlock idiom's load-bearing pair.
//! * The one mutex hands the holder the view accumulated at every prior
//!   unlock (lock/unlock are acquire/release on the mutex's internal
//!   state), so mutex-protected relaxed accesses are properly visible to
//!   the next holder — but not to lock-free readers, which is the class of
//!   bug the checker exists to catch.
//!
//! SeqCst is deliberately absent: the two protocols under check use only
//! relaxed/acquire/release and fences, and modeling the SC total order
//! would cost state space for nothing.

/// Upper bound on shared variables across all models.
pub const MAX_VARS: usize = 4;
/// Registers per thread.
pub const NREGS: usize = 12;

/// Per-variable write-index vector: "the oldest write of each variable
/// this context is entitled to observe".
pub type View = [u32; MAX_VARS];

fn join(a: &mut View, b: &View) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x).max(*y);
    }
}

/// Memory orderings the protocols use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mo {
    /// No synchronization; value visibility governed by views alone.
    Relaxed,
    /// Loads/fences: join the message view (reads-from edge becomes
    /// happens-before).
    Acquire,
    /// Stores/fences: attach the current view as the message.
    Release,
}

/// One bytecode instruction. Loads, stores, fences, and mutex ops are
/// *visible* (scheduling points); everything else executes invisibly,
/// glued to the preceding visible step.
#[derive(Clone, Copy, Debug)]
pub enum Instr {
    /// `regs[dst] = val`
    Imm {
        /// Destination register.
        dst: u8,
        /// Immediate value.
        val: u64,
    },
    /// `regs[dst] = regs[src] ± imm` (wrapping)
    Addi {
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
        /// Signed immediate addend.
        imm: i64,
    },
    /// `regs[dst] = regs[src] * imm` (wrapping)
    Muli {
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
        /// Immediate factor.
        imm: u64,
    },
    /// `regs[dst] = regs[a] + regs[b]` (wrapping)
    Add {
        /// Destination register.
        dst: u8,
        /// Left operand register.
        a: u8,
        /// Right operand register.
        b: u8,
    },
    /// `regs[dst] = load(var, mo)` — the load's value is a *choice point*.
    Load {
        /// Destination register.
        dst: u8,
        /// Atomic variable index.
        var: u8,
        /// Memory ordering of the load.
        mo: Mo,
    },
    /// `store(var, regs[src], mo)`
    Store {
        /// Atomic variable index.
        var: u8,
        /// Source register.
        src: u8,
        /// Memory ordering of the store.
        mo: Mo,
    },
    /// Standalone fence.
    Fence {
        /// Fence semantics (Acquire or Release).
        mo: Mo,
    },
    /// Acquire the global mutex (blocks while held).
    Lock,
    /// Release the global mutex.
    Unlock,
    /// Unconditional jump.
    Jmp {
        /// Target program counter.
        to: u16,
    },
    /// Branch if `regs[a] == regs[b]`.
    Beq {
        /// Left comparand register.
        a: u8,
        /// Right comparand register.
        b: u8,
        /// Target program counter.
        to: u16,
    },
    /// Branch if `regs[a] != regs[b]`.
    Bne {
        /// Left comparand register.
        a: u8,
        /// Right comparand register.
        b: u8,
        /// Target program counter.
        to: u16,
    },
    /// Branch if `regs[src]` is odd.
    Bodd {
        /// Register tested for oddness.
        src: u8,
        /// Target program counter.
        to: u16,
    },
    /// Invariant: `regs[a] == regs[b]`.
    CkEq {
        /// Left comparand register.
        a: u8,
        /// Right comparand register.
        b: u8,
        /// Invariant description reported on failure.
        what: &'static str,
    },
    /// Invariant: `regs[a] <= regs[b]`.
    CkLe {
        /// Register that must be ≤ `b`.
        a: u8,
        /// Register that must be ≥ `a`.
        b: u8,
        /// Invariant description reported on failure.
        what: &'static str,
    },
    /// Thread done.
    Halt,
}

impl Instr {
    fn visible(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Fence { .. }
                | Instr::Lock
                | Instr::Unlock
        )
    }
}

/// A thread's program.
#[derive(Clone, Debug)]
pub struct Prog {
    /// Display name (`writer-0`, `reader-1`, …).
    pub name: String,
    /// The instruction sequence.
    pub code: Vec<Instr>,
}

/// Small two-pass assembler: forward labels are declared, used in branches,
/// and bound later; `finish` patches the offsets.
pub struct Asm {
    name: String,
    code: Vec<Instr>,
    bound: Vec<Option<u16>>,
    patches: Vec<(usize, usize)>,
}

/// An unresolved jump target issued by [`Asm::label`].
#[derive(Clone, Copy)]
pub struct Label(usize);

impl Asm {
    /// New program under construction.
    pub fn new(name: impl Into<String>) -> Asm {
        Asm {
            name: name.into(),
            code: Vec::new(),
            bound: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Declares a label to be bound later (or already — bind at will).
    pub fn label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Binds `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        self.bound[l.0] = Some(self.code.len() as u16);
    }

    /// Emits an instruction.
    pub fn op(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    /// Emits a branch to `l` (offset patched at finish).
    pub fn branch(&mut self, make: impl Fn(u16) -> Instr, l: Label) -> &mut Self {
        self.patches.push((self.code.len(), l.0));
        self.code.push(make(u16::MAX));
        self
    }

    /// Resolves labels and returns the program.
    ///
    /// # Panics
    /// Panics on an unbound label (a model-construction bug).
    pub fn finish(mut self) -> Prog {
        for (at, label) in &self.patches {
            let to = self.bound[*label].expect("unbound label");
            match &mut self.code[*at] {
                Instr::Jmp { to: t }
                | Instr::Beq { to: t, .. }
                | Instr::Bne { to: t, .. }
                | Instr::Bodd { to: t, .. } => *t = to,
                other => unreachable!("patched non-branch {other:?}"),
            }
        }
        Prog {
            name: self.name,
            code: self.code,
        }
    }
}

/// One write in a variable's history.
#[derive(Clone, Debug)]
struct Write {
    val: u64,
    /// Message view an acquire reader joins (empty for plain relaxed
    /// stores issued with no release fence in effect).
    msg: View,
}

/// Shared memory: per-variable write histories plus the mutex.
#[derive(Clone, Debug)]
pub struct Memory {
    hist: Vec<Vec<Write>>,
    mutex_owner: Option<usize>,
    mutex_view: View,
}

impl Memory {
    fn new(nvars: usize) -> Memory {
        Memory {
            hist: (0..nvars)
                .map(|_| {
                    vec![Write {
                        val: 0,
                        msg: [0; MAX_VARS],
                    }]
                })
                .collect(),
            mutex_owner: None,
            mutex_view: [0; MAX_VARS],
        }
    }

    /// Latest value of `var` (for final-state checks).
    pub fn latest(&self, var: usize) -> u64 {
        self.hist[var].last().map(|w| w.val).unwrap_or(0)
    }

    /// Number of non-initial writes to `var` (for final-state checks).
    pub fn writes(&self, var: usize) -> usize {
        self.hist[var].len() - 1
    }
}

#[derive(Clone, Debug)]
struct Thread {
    pc: usize,
    regs: [u64; NREGS],
    view: View,
    /// Per-variable coherence floor: never re-read older than this.
    seen: View,
    /// Messages of reads since the last acquire fence.
    acq_pending: View,
    /// View captured at the last release fence, if any.
    rel_view: Option<View>,
    halted: bool,
}

/// An invariant violation found on some execution.
#[derive(Clone, Debug)]
pub struct ModelViolation {
    /// The thread whose check failed (or a synthetic `<scheduler>` /
    /// `<final-state>` source).
    pub thread: String,
    /// The check's message.
    pub what: String,
    /// The schedule (thread, load-choice) prefix that produced it.
    pub schedule: Vec<(usize, usize)>,
}

/// The whole system state; cloned at every branch of the exploration.
#[derive(Clone)]
pub struct Machine {
    /// Shared memory.
    pub mem: Memory,
    threads: Vec<Thread>,
    progs: std::rc::Rc<Vec<Prog>>,
}

impl Machine {
    /// Initial state for `progs` over `nvars` variables; all threads are
    /// settled onto their first visible op.
    pub fn new(progs: Vec<Prog>, nvars: usize) -> Result<Machine, ModelViolation> {
        assert!(nvars <= MAX_VARS);
        let threads = progs
            .iter()
            .map(|_| Thread {
                pc: 0,
                regs: [0; NREGS],
                view: [0; MAX_VARS],
                seen: [0; MAX_VARS],
                acq_pending: [0; MAX_VARS],
                rel_view: None,
                halted: false,
            })
            .collect();
        let mut m = Machine {
            mem: Memory::new(nvars),
            threads,
            progs: std::rc::Rc::new(progs),
        };
        for t in 0..m.threads.len() {
            m.settle(t)?;
        }
        Ok(m)
    }

    /// Thread display name.
    pub fn thread_name(&self, t: usize) -> &str {
        &self.progs[t].name
    }

    /// Number of threads.
    pub fn nthreads(&self) -> usize {
        self.threads.len()
    }

    /// Whether every thread has halted.
    pub fn all_halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Whether thread `t` can take a visible step now.
    pub fn enabled(&self, t: usize) -> bool {
        let th = &self.threads[t];
        if th.halted {
            return false;
        }
        match self.progs[t].code[th.pc] {
            Instr::Lock => self.mem.mutex_owner.is_none(),
            _ => true,
        }
    }

    /// How many distinct values thread `t`'s pending visible op may
    /// produce (1 for everything except loads; for loads, the number of
    /// eligible writes under the thread's view/coherence floor).
    pub fn choices(&self, t: usize) -> usize {
        let th = &self.threads[t];
        match self.progs[t].code[th.pc] {
            Instr::Load { var, .. } => {
                let floor = self.load_floor(t, var as usize);
                self.mem.hist[var as usize].len() - floor
            }
            _ => 1,
        }
    }

    fn load_floor(&self, t: usize, var: usize) -> usize {
        let th = &self.threads[t];
        (th.view[var].max(th.seen[var])) as usize
    }

    /// Executes thread `t`'s pending visible op (`choice` selects the
    /// write a load reads: `0` = oldest eligible) and settles the thread
    /// onto its next visible op. `Err` carries a failed invariant.
    pub fn step(&mut self, t: usize, choice: usize) -> Result<(), ModelViolation> {
        let pc = self.threads[t].pc;
        match self.progs[t].code[pc] {
            Instr::Load { dst, var, mo } => {
                let v = var as usize;
                let idx = self.load_floor(t, v) + choice;
                let write = self.mem.hist[v][idx].clone();
                let th = &mut self.threads[t];
                th.regs[dst as usize] = write.val;
                th.seen[v] = th.seen[v].max(idx as u32);
                match mo {
                    Mo::Acquire => {
                        join(&mut th.view, &write.msg);
                        th.view[v] = th.view[v].max(idx as u32);
                    }
                    _ => {
                        // The message is banked; an acquire fence may
                        // upgrade this load later.
                        join(&mut th.acq_pending, &write.msg);
                        th.acq_pending[v] = th.acq_pending[v].max(idx as u32);
                    }
                }
            }
            Instr::Store { var, src, mo } => {
                let v = var as usize;
                let idx = self.mem.hist[v].len() as u32;
                let th = &mut self.threads[t];
                th.view[v] = idx;
                th.seen[v] = idx;
                let msg = match mo {
                    Mo::Release => th.view,
                    _ => {
                        let mut m = th.rel_view.unwrap_or([0; MAX_VARS]);
                        m[v] = idx;
                        m
                    }
                };
                let val = th.regs[src as usize];
                self.mem.hist[v].push(Write { val, msg });
            }
            Instr::Fence { mo } => {
                let th = &mut self.threads[t];
                match mo {
                    Mo::Release => th.rel_view = Some(th.view),
                    Mo::Acquire => {
                        let pending = th.acq_pending;
                        join(&mut th.view, &pending);
                    }
                    Mo::Relaxed => {}
                }
            }
            Instr::Lock => {
                debug_assert!(self.mem.mutex_owner.is_none());
                self.mem.mutex_owner = Some(t);
                let mv = self.mem.mutex_view;
                join(&mut self.threads[t].view, &mv);
            }
            Instr::Unlock => {
                debug_assert_eq!(self.mem.mutex_owner, Some(t));
                self.mem.mutex_owner = None;
                let tv = self.threads[t].view;
                join(&mut self.mem.mutex_view, &tv);
            }
            ref other => unreachable!("pending op must be visible, found {other:?}"),
        }
        self.threads[t].pc += 1;
        self.settle(t)
    }

    /// Runs invisible instructions until the pc rests on a visible op or
    /// the thread halts. Checks fire here.
    fn settle(&mut self, t: usize) -> Result<(), ModelViolation> {
        loop {
            let pc = self.threads[t].pc;
            let instr = self.progs[t].code[pc];
            if instr.visible() {
                return Ok(());
            }
            let th = &mut self.threads[t];
            match instr {
                Instr::Imm { dst, val } => th.regs[dst as usize] = val,
                Instr::Addi { dst, src, imm } => {
                    th.regs[dst as usize] = th.regs[src as usize].wrapping_add_signed(imm)
                }
                Instr::Muli { dst, src, imm } => {
                    th.regs[dst as usize] = th.regs[src as usize].wrapping_mul(imm)
                }
                Instr::Add { dst, a, b } => {
                    th.regs[dst as usize] = th.regs[a as usize].wrapping_add(th.regs[b as usize])
                }
                Instr::Jmp { to } => {
                    th.pc = to as usize;
                    continue;
                }
                Instr::Beq { a, b, to } => {
                    if th.regs[a as usize] == th.regs[b as usize] {
                        th.pc = to as usize;
                        continue;
                    }
                }
                Instr::Bne { a, b, to } => {
                    if th.regs[a as usize] != th.regs[b as usize] {
                        th.pc = to as usize;
                        continue;
                    }
                }
                Instr::Bodd { src, to } => {
                    if th.regs[src as usize] % 2 == 1 {
                        th.pc = to as usize;
                        continue;
                    }
                }
                Instr::CkEq { a, b, what } => {
                    if th.regs[a as usize] != th.regs[b as usize] {
                        return Err(self.violation(t, what));
                    }
                }
                Instr::CkLe { a, b, what } => {
                    if th.regs[a as usize] > th.regs[b as usize] {
                        return Err(self.violation(t, what));
                    }
                }
                Instr::Halt => {
                    th.halted = true;
                    return Ok(());
                }
                _ => unreachable!(),
            }
            self.threads[t].pc += 1;
        }
    }

    fn violation(&self, t: usize, what: &'static str) -> ModelViolation {
        ModelViolation {
            thread: self.progs[t].name.clone(),
            what: what.into(),
            schedule: Vec::new(), // filled in by the explorer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// writer: x = 1 (release); reader: r0 = x (acquire) twice, second
    /// read must not regress (coherence floor).
    #[test]
    fn coherence_floor_prevents_rereading_older_writes() {
        let mut w = Asm::new("w");
        w.op(Instr::Imm { dst: 0, val: 1 })
            .op(Instr::Store {
                var: 0,
                src: 0,
                mo: Mo::Release,
            })
            .op(Instr::Halt);
        let mut r = Asm::new("r");
        r.op(Instr::Load {
            dst: 0,
            var: 0,
            mo: Mo::Acquire,
        })
        .op(Instr::Load {
            dst: 1,
            var: 0,
            mo: Mo::Acquire,
        })
        .op(Instr::Halt);
        // Schedule: writer stores, reader reads new (choice 1), then the
        // second read has exactly one eligible write (the new one).
        let mut m = Machine::new(vec![w.finish(), r.finish()], 1).unwrap();
        m.step(0, 0).unwrap(); // store
        assert_eq!(m.choices(1), 2, "old and new eligible");
        m.step(1, 1).unwrap(); // read the new write
        assert_eq!(m.choices(1), 1, "floor excludes the old write");
        m.step(1, 0).unwrap();
        assert!(m.all_halted());
    }

    /// Without release/acquire, a reader may see the flag but miss the
    /// payload; with them it cannot.
    #[test]
    fn acquire_of_release_store_forces_payload_visibility() {
        let build = |mo_store: Mo, mo_load: Mo| {
            let mut w = Asm::new("w");
            w.op(Instr::Imm { dst: 0, val: 42 })
                .op(Instr::Store {
                    var: 1,
                    src: 0,
                    mo: Mo::Relaxed,
                }) // payload
                .op(Instr::Imm { dst: 1, val: 1 })
                .op(Instr::Store {
                    var: 0,
                    src: 1,
                    mo: mo_store,
                }) // flag
                .op(Instr::Halt);
            let mut r = Asm::new("r");
            r.op(Instr::Load {
                dst: 0,
                var: 0,
                mo: mo_load,
            })
            .op(Instr::Load {
                dst: 1,
                var: 1,
                mo: Mo::Relaxed,
            })
            .op(Instr::Halt);
            (w.finish(), r.finish())
        };

        // Release/acquire: after reading flag==1, payload load has exactly
        // one eligible write (42).
        let (w, r) = build(Mo::Release, Mo::Acquire);
        let mut m = Machine::new(vec![w, r], 2).unwrap();
        m.step(0, 0).unwrap(); // payload store
        m.step(0, 0).unwrap(); // flag store (release)
        m.step(1, 1).unwrap(); // acquire-load flag, choice 1 = new
        assert_eq!(m.choices(1), 1, "payload stale value excluded");

        // Relaxed/relaxed: the stale payload remains eligible.
        let (w, r) = build(Mo::Relaxed, Mo::Relaxed);
        let mut m = Machine::new(vec![w, r], 2).unwrap();
        m.step(0, 0).unwrap();
        m.step(0, 0).unwrap();
        m.step(1, 1).unwrap();
        assert_eq!(m.choices(1), 2, "stale payload still eligible");
    }

    /// Release fence upgrades subsequent relaxed stores; acquire fence
    /// upgrades prior relaxed loads. (The seqlock recipe.)
    #[test]
    fn fence_pair_transfers_views() {
        let mut w = Asm::new("w");
        w.op(Instr::Imm { dst: 0, val: 7 })
            .op(Instr::Store {
                var: 1,
                src: 0,
                mo: Mo::Relaxed,
            }) // payload first
            .op(Instr::Fence { mo: Mo::Release })
            .op(Instr::Imm { dst: 1, val: 1 })
            .op(Instr::Store {
                var: 0,
                src: 1,
                mo: Mo::Relaxed,
            }) // flag, relaxed-after-fence
            .op(Instr::Halt);
        let mut r = Asm::new("r");
        r.op(Instr::Load {
            dst: 0,
            var: 0,
            mo: Mo::Relaxed,
        })
        .op(Instr::Fence { mo: Mo::Acquire })
        .op(Instr::Load {
            dst: 1,
            var: 1,
            mo: Mo::Relaxed,
        })
        .op(Instr::Halt);
        let mut m = Machine::new(vec![w.finish(), r.finish()], 2).unwrap();
        m.step(0, 0).unwrap(); // payload
        m.step(0, 0).unwrap(); // fence
        m.step(0, 0).unwrap(); // flag
        m.step(1, 1).unwrap(); // relaxed-load flag == 1
        m.step(1, 0).unwrap(); // acquire fence joins the flag's message
        assert_eq!(m.choices(1), 1, "payload forced to 7 after fence pair");
    }

    /// Mutex passes the holder's view to the next holder.
    #[test]
    fn mutex_transfers_views() {
        let mut a = Asm::new("a");
        a.op(Instr::Lock)
            .op(Instr::Imm { dst: 0, val: 5 })
            .op(Instr::Store {
                var: 0,
                src: 0,
                mo: Mo::Relaxed,
            })
            .op(Instr::Unlock)
            .op(Instr::Halt);
        let mut b = Asm::new("b");
        b.op(Instr::Lock)
            .op(Instr::Load {
                dst: 0,
                var: 0,
                mo: Mo::Relaxed,
            })
            .op(Instr::Unlock)
            .op(Instr::Halt);
        let mut m = Machine::new(vec![a.finish(), b.finish()], 1).unwrap();
        assert!(m.enabled(0) && m.enabled(1));
        m.step(0, 0).unwrap(); // a locks
        assert!(!m.enabled(1), "mutex held");
        m.step(0, 0).unwrap(); // store
        m.step(0, 0).unwrap(); // unlock
        m.step(1, 0).unwrap(); // b locks, inherits a's view
        assert_eq!(m.choices(1), 1, "must see 5, not the initial 0");
    }
}
