//! The `gps-analyze` command-line front end.
//!
//! Subcommands:
//!
//! * `check` — run the workspace linter; exit 1 listing `rule-id
//!   file:line — message` for every violation.
//! * `deps` — audit `Cargo.lock` against the vetted offline package set.
//! * `interleave` — run the standard seqlock/board interleaving suite.
//! * `all` — all of the above (CI entry point).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("gps-analyze: could not locate the workspace root");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "check" => run_check(&root),
        "deps" => run_deps(&root),
        "interleave" => run_interleave(),
        "all" => {
            let mut code = ExitCode::SUCCESS;
            for step in [run_check(&root), run_deps(&root), run_interleave()] {
                if step != ExitCode::SUCCESS {
                    code = ExitCode::FAILURE;
                }
            }
            code
        }
        other => {
            eprintln!("gps-analyze: unknown subcommand `{other}`");
            eprintln!("usage: gps-analyze [check|deps|interleave|all]");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    gps_analyze::find_root(&cwd)
        .or_else(|| gps_analyze::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))))
}

fn run_check(root: &Path) -> ExitCode {
    match gps_analyze::lint_workspace(root) {
        Ok(violations) if violations.is_empty() => {
            println!("check: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("check: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_deps(root: &Path) -> ExitCode {
    let lock = root.join("Cargo.lock");
    let text = match std::fs::read_to_string(&lock) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("deps: cannot read {}: {e}", lock.display());
            return ExitCode::FAILURE;
        }
    };
    let problems = gps_analyze::deps::audit_lockfile(&text);
    if problems.is_empty() {
        println!("deps: Cargo.lock clean (vetted offline set only)");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            println!("lockfile-audit Cargo.lock — {p}");
        }
        eprintln!("deps: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

fn run_interleave() -> ExitCode {
    let mut total: u64 = 0;
    let mut failed = false;
    for run in gps_analyze::interleave::standard_runs() {
        let name = run.name;
        let r = gps_analyze::interleave::execute(&run);
        total += r.schedules;
        let status = if r.clean() && !r.truncated {
            "ok"
        } else {
            failed = true;
            "FAIL"
        };
        println!("interleave: {name}: {} schedules — {status}", r.schedules);
        for v in &r.violations {
            println!("  violation [{}] {}", v.thread, v.what);
            println!("  witness schedule: {:?}", v.schedule);
        }
        if r.truncated {
            println!("  truncated at schedule cap — exhaustiveness claim void");
        }
    }
    println!("interleave: {total} schedules total");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
