//! The lint rules and the per-file rule driver.
//!
//! Every rule has a stable ID (the string reported to the user and matched
//! by allowlist entries) and a path-derived scope: which rules apply to a
//! file is a pure function of its repo-relative path, so fixture tests can
//! exercise any rule by linting fixture text under a synthetic path. See
//! `docs/verification.md` for the rule catalog.

use crate::lexer::{mask, MaskedFile};

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule ID, e.g. `no-hashmap-hot-path`.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{} — {}",
            self.rule, self.path, self.line, self.msg
        )
    }
}

/// Rule IDs, in catalog order (used by `--explain` style output and docs).
pub const RULE_IDS: &[&str] = &[
    "no-hashmap-hot-path",
    "no-unseeded-rng",
    "no-wallclock-in-determinism",
    "no-unwrap-in-lib",
    "forbid-unsafe-everywhere",
    "atomics-justified",
    "no-stray-allow",
    "metric-name-registry",
];

/// Crates whose hot paths must stay free of std hash collections (the
/// compact backend exists precisely so these never hash on the data path;
/// the one sanctioned wrapper is `gps-graph/src/hash.rs`, via allowlist).
const HOT_PATH_CRATES: &[&str] = &["gps-graph", "gps-core", "gps-engine"];

/// Crates whose library code must propagate errors instead of panicking.
/// `gps-chaos` is held to the same bar: a chaos harness that can itself
/// panic outside a scripted fault would poison every determinism claim it
/// makes about the engine.
const NO_UNWRAP_CRATES: &[&str] = &["gps-engine", "gps-serve", "gps-chaos", "gps-sim"];

fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn in_crate_src(path: &str, crates: &[&str]) -> bool {
    crate_of(path).is_some_and(|c| crates.contains(&c))
        && path
            .splitn(3, '/')
            .nth(2)
            .is_some_and(|r| r.starts_with("src/") || r == "src")
}

fn is_compat(path: &str) -> bool {
    path.starts_with("crates/compat/")
}

/// Is this file a crate root (`src/lib.rs` of a workspace member, or the
/// facade's root `src/lib.rs`)?
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Marks lines belonging to `#[cfg(test)]` items (the repo convention:
/// unit tests live in `#[cfg(test)] mod tests { … }`).
///
/// Works on the masked code view: from each `#[cfg(test)]` attribute, the
/// following item's extent is the balanced-brace block starting at the next
/// `{` — or just up to the next `;` if one appears first at depth zero
/// (attribute on a `use` or statement-like item).
fn cfg_test_lines(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !code[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i32 = 0;
        let mut entered = false;
        let mut j = i;
        'scan: while j < code.len() {
            test[j] = true;
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth == 0 {
                            break 'scan;
                        }
                    }
                    ';' if !entered && depth == 0 && j > i => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    test
}

/// Lints one file's text as if it lived at repo-relative `path`.
///
/// This is the whole linter for one file; [`crate::lint_workspace`] drives
/// it over the scanned set and then applies the allowlist.
pub fn lint_source(path: &str, text: &str) -> Vec<Violation> {
    let masked = mask(text);
    let tests = cfg_test_lines(&masked.code);
    let mut out = Vec::new();

    rule_hashmap_hot_path(path, &masked, &tests, &mut out);
    rule_unseeded_rng(path, &masked, &mut out);
    rule_wallclock(path, &masked, &tests, &mut out);
    rule_unwrap_in_lib(path, &masked, &tests, &mut out);
    rule_forbid_unsafe(path, &masked, &mut out);
    rule_atomics_justified(path, &masked, &mut out);
    rule_stray_allow(path, &masked, &mut out);

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(out: &mut Vec<Violation>, rule: &'static str, path: &str, line: usize, msg: String) {
    out.push(Violation {
        rule,
        path: path.to_owned(),
        line: line + 1, // rules index lines from 0 internally
        msg,
    });
}

/// `no-hashmap-hot-path`: no `std::collections::{HashMap, HashSet}` in the
/// library code of the hot-path crates. Hashing on the data path is what
/// the compact backend removed (PR 2); direct std-collection imports are
/// how it would silently creep back.
fn rule_hashmap_hot_path(path: &str, m: &MaskedFile, tests: &[bool], out: &mut Vec<Violation>) {
    if !in_crate_src(path, HOT_PATH_CRATES) {
        return;
    }
    for (i, line) in m.code.iter().enumerate() {
        if tests[i] {
            continue;
        }
        // Catches direct paths (`std::collections::HashMap`), brace imports
        // (`use std::collections::{…, HashMap}`), and `collections::{…}`
        // continuation lines; `FxHashMap` alone never matches.
        let names_std = line.contains("std::collections::") || line.contains("collections::{");
        if names_std && (line.contains("HashMap") || line.contains("HashSet")) {
            push(
                out,
                "no-hashmap-hot-path",
                path,
                i,
                "std hash collection in hot-path crate library code (use the compact \
                 backend, or gps-graph's FxHash wrapper where a map is unavoidable)"
                    .into(),
            );
        }
    }
}

/// `no-unseeded-rng`: every RNG in the workspace must be seeded; ambient
/// entropy (`thread_rng`, `from_entropy`, `OsRng`) breaks same-seed
/// reproducibility, which every differential and statistical test rests on.
fn rule_unseeded_rng(path: &str, m: &MaskedFile, out: &mut Vec<Violation>) {
    if is_compat(path) {
        // The rand shim is where seeding policy is *defined*.
        return;
    }
    const TOKENS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "ThreadRng"];
    for (i, line) in m.code.iter().enumerate() {
        if let Some(tok) = TOKENS.iter().find(|t| line.contains(*t)) {
            push(
                out,
                "no-unseeded-rng",
                path,
                i,
                format!("ambient-entropy RNG `{tok}` (seed explicitly: SmallRng::seed_from_u64)"),
            );
        }
    }
}

/// `no-wallclock-in-determinism`: `Instant::now` / `SystemTime` only in
/// timing modules (bench perf/experiments, the criterion shim) — never in
/// the estimation path, where wall time would leak into results.
///
/// The serving layer's deterministic clock hook (`gps-serve/src/clock.rs`)
/// is the rule's sanctioned abstraction: the one place the wall clock may
/// be read, behind a `ClockMode` that tests swap for virtual time. Any
/// other serve-side `Instant::now` is a site that dodged the hook.
fn rule_wallclock(path: &str, m: &MaskedFile, tests: &[bool], out: &mut Vec<Violation>) {
    if !path.starts_with("crates/") {
        return; // examples and root tests time things legitimately
    }
    if path == "crates/gps-serve/src/clock.rs" {
        return; // the deterministic clock hook wraps the one wall-clock read
    }
    for (i, line) in m.code.iter().enumerate() {
        if tests[i] {
            continue;
        }
        if line.contains("Instant::now") || line.contains("SystemTime") {
            push(
                out,
                "no-wallclock-in-determinism",
                path,
                i,
                "wall-clock read outside a timing module".into(),
            );
        }
    }
}

/// `no-unwrap-in-lib`: engine/serve library code must propagate errors.
/// `.unwrap()`/`.expect(` in their non-test src is either a bug-to-be or a
/// deliberate panic contract — the latter gets a documented allowlist entry.
fn rule_unwrap_in_lib(path: &str, m: &MaskedFile, tests: &[bool], out: &mut Vec<Violation>) {
    if !in_crate_src(path, NO_UNWRAP_CRATES) {
        return;
    }
    for (i, line) in m.code.iter().enumerate() {
        if tests[i] {
            continue;
        }
        // `unwrap_or…` combinators are fine; only the panicking forms count.
        let unwraps = line.contains(".unwrap()");
        let expects = line.contains(".expect(");
        if unwraps || expects {
            let what = if unwraps { ".unwrap()" } else { ".expect(…)" };
            push(
                out,
                "no-unwrap-in-lib",
                path,
                i,
                format!("{what} in library code (propagate the error, or allowlist a documented panic contract)"),
            );
        }
    }
}

/// `forbid-unsafe-everywhere`: every crate root carries
/// `#![forbid(unsafe_code)]` — the whole workspace is safe code by
/// construction (the seqlock included), and `forbid` cannot be overridden
/// further down the tree the way `deny` can.
fn rule_forbid_unsafe(path: &str, m: &MaskedFile, out: &mut Vec<Violation>) {
    if !is_crate_root(path) {
        return;
    }
    let has = m.code.iter().any(|l| l.contains("#![forbid(unsafe_code)]"));
    if !has {
        push(
            out,
            "forbid-unsafe-everywhere",
            path,
            0,
            "crate root lacks #![forbid(unsafe_code)]".into(),
        );
    }
}

/// `atomics-justified`: every atomic `Ordering::…` use site carries an
/// adjacent `// ordering:` comment naming the happens-before edge it
/// establishes (same line, or in the contiguous comment block directly
/// above). The 17 existing justifications are the worked examples.
fn rule_atomics_justified(path: &str, m: &MaskedFile, out: &mut Vec<Violation>) {
    const ORDERINGS: &[&str] = &[
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
        "Ordering::SeqCst",
    ];
    for (i, line) in m.code.iter().enumerate() {
        if !ORDERINGS.iter().any(|o| line.contains(o)) {
            continue;
        }
        if has_adjacent_ordering_comment(m, i) {
            continue;
        }
        push(
            out,
            "atomics-justified",
            path,
            i,
            "atomic Ordering:: use without an adjacent `// ordering:` justification".into(),
        );
    }
}

/// Same-line trailing comment, or any line of the contiguous comment block
/// immediately above, containing `ordering:`.
fn has_adjacent_ordering_comment(m: &MaskedFile, i: usize) -> bool {
    if m.comments[i].contains("ordering:") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code = m.code[j].trim();
        let comment = &m.comments[j];
        // Only comment-*only* lines extend the block: a trailing comment
        // on an unrelated code line above must not justify this site, and
        // a blank line breaks contiguity.
        if !code.is_empty() || comment.trim().is_empty() {
            return false;
        }
        if comment.contains("ordering:") {
            return true;
        }
    }
    false
}

/// `metric-name-registry`: every telemetry metric registered in crate
/// library code (`.counter("…")`, `.gauge("…")`, `.histogram("…")` with a
/// string-literal name) must be documented with a one-line meaning in
/// `docs/observability.md`, and each name must have exactly one
/// registration call site — `gps-telemetry` deduplicates by name at
/// runtime, so a second call site silently aliases the first handle and
/// the two "metrics" become one ledger.
///
/// Trace stage and mark names (`.stage("…")`, `.mark("…")` on an
/// `EpochTrace`) are held to the same contract: documented in the
/// trace-stage catalog, and recorded from exactly one library call site —
/// a stage name stamped from two places would make `EpochTrace::span`
/// ambiguous and the timeline unreadable.
///
/// Cross-file by nature, so it runs once over the scanned set
/// ([`crate::lint_workspace`] calls it after the per-file pass) instead of
/// inside [`lint_source`]; fixture tests call it directly with synthetic
/// files and a synthetic catalog. Lookup helpers (`counter_value`,
/// `gauge_value`, `histogram_sample`) don't match the registration
/// patterns, so read sites never register names.
pub fn rule_metric_registry(files: &[(String, String)], catalog: &str) -> Vec<Violation> {
    const RULE: &str = "metric-name-registry";
    let mut out = Vec::new();
    // (name, path, 0-based line) in scan order.
    let mut sites: Vec<(String, String, usize)> = Vec::new();
    for (path, text) in files {
        if is_compat(path) {
            continue;
        }
        let in_src = path.starts_with("crates/")
            && path
                .splitn(3, '/')
                .nth(2)
                .is_some_and(|r| r.starts_with("src/"));
        if !in_src {
            continue;
        }
        let m = mask(text);
        let tests = cfg_test_lines(&m.code);
        let raw: Vec<&str> = text.lines().collect();
        for (i, line) in m.code.iter().enumerate() {
            if tests[i] {
                continue;
            }
            let code: Vec<char> = line.chars().collect();
            for pat in [
                ".counter(\"",
                ".gauge(\"",
                ".histogram(\"",
                ".stage(\"",
                ".mark(\"",
            ] {
                for at in find_all(&code, pat) {
                    let start = at + pat.chars().count();
                    // The code view masks literal interiors but keeps the
                    // delimiters at their source columns, so the closing
                    // quote in the view locates the literal in the raw line.
                    let Some(len) = code[start..].iter().position(|&c| c == '"') else {
                        continue;
                    };
                    let name: String = raw
                        .get(i)
                        .map(|r| r.chars().skip(start).take(len).collect())
                        .unwrap_or_default();
                    if !name.is_empty() {
                        sites.push((name, path.clone(), i));
                    }
                }
            }
        }
    }
    for (k, (name, path, line)) in sites.iter().enumerate() {
        if let Some((_, first_path, first_line)) = sites[..k].iter().find(|(n, _, _)| n == name) {
            push(
                &mut out,
                RULE,
                path,
                *line,
                format!(
                    "duplicate registration of metric `{name}` (first registered at \
                     {first_path}:{}; reuse that handle — the registry aliases by name)",
                    first_line + 1
                ),
            );
            continue; // don't also report the duplicate as undocumented
        }
        if !documented(catalog, name) {
            push(
                &mut out,
                RULE,
                path,
                *line,
                format!(
                    "metric `{name}` is not documented in docs/observability.md \
                     (add a catalog line: - `{name}` — meaning)"
                ),
            );
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// All char positions where `pat` (ASCII) starts in `chars`.
fn find_all(chars: &[char], pat: &str) -> Vec<usize> {
    let p: Vec<char> = pat.chars().collect();
    if chars.len() < p.len() {
        return Vec::new();
    }
    (0..=chars.len() - p.len())
        .filter(|&i| chars[i..i + p.len()] == p[..])
        .collect()
}

/// Is `name` documented in the catalog — a line carrying the backticked
/// name *and* a non-empty meaning after it (separator punctuation alone
/// does not count as a meaning)?
fn documented(catalog: &str, name: &str) -> bool {
    let tick = format!("`{name}`");
    catalog.lines().any(|l| {
        l.find(&tick).is_some_and(|pos| {
            l[pos + tick.len()..]
                .trim_matches(|c: char| c.is_whitespace() || "—–-:|.".contains(c))
                .chars()
                .any(|c| c.is_alphanumeric())
        })
    })
}

/// `no-stray-allow`: `#[allow(…)]` / `#![allow(…)]` in first-party source
/// must be an allowlisted, documented exception — otherwise lint debt
/// accumulates invisibly (PR 6 found one provably stale attribute).
fn rule_stray_allow(path: &str, m: &MaskedFile, out: &mut Vec<Violation>) {
    // Compat shims mirror third-party APIs and carry their own allows; the
    // rule covers first-party crate sources and the facade root.
    let first_party = (path.starts_with("crates/") && !is_compat(path)) || path == "src/lib.rs";
    if !first_party {
        return;
    }
    for (i, line) in m.code.iter().enumerate() {
        if line.contains("#[allow(") || line.contains("#![allow(") {
            push(
                out,
                "no-stray-allow",
                path,
                i,
                "lint allow attribute without a documented allowlist entry".into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_mod_block() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let m = mask(src);
        let t = cfg_test_lines(&m.code);
        assert_eq!(t, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_use_statement_is_one_statement() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { q.unwrap(); }\n";
        let m = mask(src);
        let t = cfg_test_lines(&m.code);
        assert_eq!(t, vec![true, true, false]);
    }

    #[test]
    fn scope_derivation() {
        assert!(in_crate_src("crates/gps-core/src/heap.rs", HOT_PATH_CRATES));
        assert!(!in_crate_src("crates/gps-core/tests/x.rs", HOT_PATH_CRATES));
        assert!(!in_crate_src(
            "crates/gps-serve/src/serve.rs",
            HOT_PATH_CRATES
        ));
        assert!(is_crate_root("crates/gps-core/src/lib.rs"));
        assert!(is_crate_root("src/lib.rs"));
        assert!(!is_crate_root("crates/gps-core/src/heap.rs"));
    }

    #[test]
    fn ordering_comment_block_above_is_accepted() {
        let src = "// ordering: Release pairs with the reader's Acquire\n\
                   // (second comment line).\n\
                   seq.store(1, Ordering::Release);\n";
        let v = lint_source("crates/gps-serve/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != "atomics-justified"), "{v:?}");
    }

    #[test]
    fn ordering_without_comment_fires() {
        let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }\n";
        let v = lint_source("crates/gps-serve/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "atomics-justified");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }\n";
        assert!(lint_source("crates/gps-core/src/x.rs", src).is_empty());
    }
}
