//! A masking scanner for Rust source: blanks out the *interiors* of
//! comments, string literals, and char literals so that token-level rules
//! can match against code without tripping on prose.
//!
//! This is deliberately not a parser. The linter's rules are token
//! patterns ("`std::collections::HashMap` appears", "`.unwrap()` appears"),
//! and the only parsing-adjacent work they need is knowing whether a given
//! byte sits in code or inside a comment/string. The scanner handles the
//! full literal grammar the workspace actually uses: line comments (`//`,
//! `///`, `//!`), nested block comments, plain/escaped strings, raw strings
//! with any number of `#`s, byte strings, char literals, and the classic
//! ambiguity between a char literal and a lifetime (`'a'` vs `&'a T`).
//!
//! Two parallel views of the file come back, both line-indexed and
//! byte-for-byte the same shape as the input:
//!
//! * [`MaskedFile::code`] — comments and literal interiors replaced by
//!   spaces (string *delimiters* stay, so `"x"` masks to `" "`): rules
//!   search this view.
//! * [`MaskedFile::comments`] — the complement: only comment text survives.
//!   The `atomics-justified` rule searches this view for `ordering:`
//!   annotations, so an `"ordering:"` inside a string can never satisfy it.

/// One source file split into its code view and its comment view.
#[derive(Debug)]
pub struct MaskedFile {
    /// Per-line code view: comment and literal interiors blanked.
    pub code: Vec<String>,
    /// Per-line comment view: everything except comment text blanked.
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Inside `"…"`; `true` while the next char is escaped.
    Str(bool),
    /// Inside `r##"…"##` with the given number of `#`s.
    RawStr(u32),
    /// Inside `'…'`; `true` while the next char is escaped.
    CharLit(bool),
}

/// Masks `source` into its code and comment views.
///
/// The transformation is line-preserving: view line `i` corresponds exactly
/// to source line `i`, and every masked byte is replaced by a space, so
/// column positions in the views are column positions in the source.
pub fn mask(source: &str) -> MaskedFile {
    let bytes: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comments = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            // Newlines pass through both views; a line comment ends here.
            if state == State::LineComment {
                state = State::Code;
            }
            code.push('\n');
            comments.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    comments.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    comments.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str(false);
                    code.push('"');
                    comments.push(' ');
                    i += 1;
                } else if c == 'r' && is_raw_string_start(&bytes, i + 1) {
                    let hashes = count_hashes(&bytes, i + 1);
                    state = State::RawStr(hashes);
                    // The delimiters (`r`, hashes, quote) stay in the code view.
                    code.push_str(&raw_open(hashes));
                    comments.push_str(&" ".repeat(2 + hashes as usize));
                    i += 2 + hashes as usize;
                } else if c == 'b' && next == Some('"') {
                    state = State::Str(false);
                    code.push_str("b\"");
                    comments.push_str("  ");
                    i += 2;
                } else if c == 'b' && next == Some('r') && is_raw_string_start(&bytes, i + 2) {
                    let hashes = count_hashes(&bytes, i + 2);
                    state = State::RawStr(hashes);
                    code.push('b');
                    code.push_str(&raw_open(hashes));
                    comments.push_str(&" ".repeat(3 + hashes as usize));
                    i += 3 + hashes as usize;
                } else if c == '\'' && is_char_literal(&bytes, i) {
                    state = State::CharLit(false);
                    code.push('\'');
                    comments.push(' ');
                    i += 1;
                } else {
                    code.push(c);
                    comments.push(' ');
                    i += 1;
                }
            }
            State::LineComment => {
                code.push(' ');
                comments.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    comments.push_str("*/");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    comments.push_str("/*");
                    i += 2;
                } else {
                    code.push(' ');
                    comments.push(c);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if c == '\\' {
                    state = State::Str(true);
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    comments.push(' ');
                    i += 1;
                    continue;
                }
                code.push(' ');
                comments.push(' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i + 1, hashes) {
                    state = State::Code;
                    code.push('"');
                    code.push_str(&"#".repeat(hashes as usize));
                    comments.push_str(&" ".repeat(1 + hashes as usize));
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if c == '\\' {
                    state = State::CharLit(true);
                } else if c == '\'' {
                    state = State::Code;
                    code.push('\'');
                    comments.push(' ');
                    i += 1;
                    continue;
                }
                code.push(' ');
                comments.push(' ');
                i += 1;
            }
        }
    }
    MaskedFile {
        code: code.lines().map(str::to_owned).collect(),
        comments: comments.lines().map(str::to_owned).collect(),
    }
}

fn raw_open(hashes: u32) -> String {
    std::iter::once('r')
        .chain((0..hashes).map(|_| '#'))
        .chain(std::iter::once('"'))
        .collect()
}

/// At `pos` (just past an `r` or `br` prefix): does `#*"` follow?
fn is_raw_string_start(bytes: &[char], pos: usize) -> bool {
    let mut j = pos;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn count_hashes(bytes: &[char], pos: usize) -> u32 {
    let mut j = pos;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    (j - pos) as u32
}

/// Does a `"` at `pos..` follow with exactly `hashes` `#`s, closing the raw
/// string?
fn closes_raw(bytes: &[char], pos: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(pos + k) == Some(&'#'))
}

/// Disambiguates a `'` in code position: char literal or lifetime?
///
/// `'x'` and `'\n'` are literals; `'a` followed by anything but a closing
/// quote (`&'a mut`, `<'a>`, `'static`) is a lifetime. The rule: it is a
/// literal iff an escape follows, or exactly one char followed by `'`.
fn is_char_literal(bytes: &[char], pos: usize) -> bool {
    match bytes.get(pos + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(pos + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> String {
        mask(src).code.join("\n")
    }
    fn comments(src: &str) -> String {
        mask(src).comments.join("\n")
    }

    #[test]
    fn line_comments_leave_code_view() {
        let src = "let x = 1; // HashMap here\nlet y = 2;";
        let c = code(src);
        assert!(!c.contains("HashMap"));
        assert!(c.contains("let x = 1;"));
        assert!(comments(src).contains("HashMap here"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// uses HashMap internally\nfn f() {}";
        assert!(!code(src).contains("HashMap"));
        assert!(comments(src).contains("uses HashMap internally"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* HashMap */ y */ b";
        let c = code(src);
        assert!(!c.contains("HashMap"));
        assert!(c.starts_with('a') && c.trim_end().ends_with('b'));
    }

    #[test]
    fn strings_are_masked_but_delimited() {
        let src = r#"let s = "std::collections::HashMap"; let t = 1;"#;
        let c = code(src);
        assert!(!c.contains("HashMap"));
        assert!(c.contains("let t = 1;"));
        assert!(c.contains('"'));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "a\"HashMap"; let u = unwrap;"#;
        let c = code(src);
        assert!(!c.contains("HashMap"));
        assert!(c.contains("let u = unwrap;"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "HashMap" quoted"#; let v = 2;"###;
        let c = code(src);
        assert!(!c.contains("HashMap"));
        assert!(c.contains("let v = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'y'; x }";
        let c = code(src);
        // The lifetime text survives in the code view…
        assert!(c.contains("<'a>"));
        // …while the char literal interior is masked.
        assert!(!c.contains('y'));
    }

    #[test]
    fn multiline_string_preserves_line_count() {
        let src = "let s = \"one\ntwo // not a comment\nthree\";\nlet after = 0;";
        let m = mask(src);
        assert_eq!(m.code.len(), 4);
        assert!(!m.code[1].contains("two"));
        assert!(m.comments[1].trim().is_empty(), "string is not a comment");
        assert!(m.code[3].contains("let after = 0;"));
    }

    #[test]
    fn comment_markers_inside_strings_are_inert() {
        let src = "let s = \"// ordering: fake\"; let live = 1;";
        assert!(comments(src).trim().is_empty());
        assert!(code(src).contains("let live = 1;"));
    }

    #[test]
    fn byte_strings() {
        let src = "let b = b\"HashMap\"; let k = 3;";
        let c = code(src);
        assert!(!c.contains("HashMap"));
        assert!(c.contains("let k = 3;"));
    }
}
