//! `gps-analyze`: machine-checked guardrails for the GPS workspace.
//!
//! Three engines, surfaced by the `gps-analyze` binary and used directly
//! by this crate's tests:
//!
//! 1. **The workspace linter** ([`lint_workspace`]) — a comment- and
//!    string-aware token scanner that enforces the repo invariants that
//!    used to live in reviewer memory: no std hash collections in hot-path
//!    crates, no ambient-entropy RNG, no wall-clock reads in the
//!    estimation path, no `.unwrap()` in engine/serve library code,
//!    `#![forbid(unsafe_code)]` in every crate root, a justification
//!    comment on every atomic `Ordering::` use, no undocumented
//!    `#[allow]`, and every telemetry metric name registered in library
//!    code documented (exactly once) in `docs/observability.md`.
//!    Exceptions are explicit, reasoned entries in
//!    `crates/gps-analyze/analyze.allow`; stale entries are themselves
//!    errors.
//! 2. **The lockfile audit** ([`deps::audit_lockfile`]) — Cargo.lock must
//!    resolve only the vetted offline package set, each at one version.
//! 3. **The interleaving checker** ([`interleave`]) — exhaustively
//!    explores schedules of the `EpochCell` seqlock and epoch-`Board`
//!    protocols under a release/acquire view memory model, proving no
//!    torn reads, monotone versions, and watermark non-regression across
//!    every enumerated interleaving — and that each ordering is
//!    load-bearing (weakening any one is caught).
//!
//! The rule catalog and the checker's guarantees/limits are documented in
//! `docs/verification.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deps;
pub mod interleave;
pub mod lexer;
pub mod rules;

pub use config::Allowlist;
pub use rules::{lint_source, Violation};

use std::path::{Path, PathBuf};

/// Repo-relative path of the allowlist file.
pub const ALLOWLIST_PATH: &str = "crates/gps-analyze/analyze.allow";

/// Files the linter scans, as repo-relative paths: every crate's `src`
/// tree (compat shims included — rules scope themselves), the facade's
/// `src`, and the root `tests/` and `examples/` directories.
pub fn scanned_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    collect_crate_dirs(&crates, &mut crate_dirs)?;
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    for flat in ["tests", "examples"] {
        let dir = root.join(flat);
        if dir.is_dir() {
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "rs") {
                    files.push(path);
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Crate directories: `crates/*` plus the nested `crates/compat/*`.
fn collect_crate_dirs(crates: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(crates)? {
        let path = entry?.path();
        if !path.is_dir() {
            continue;
        }
        if path.file_name().is_some_and(|n| n == "compat") {
            for sub in std::fs::read_dir(&path)? {
                let sub = sub?.path();
                if sub.is_dir() {
                    out.push(sub);
                }
            }
        } else {
            out.push(path);
        }
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints the whole workspace under `root`, applying the repo allowlist.
/// Returns surviving violations (including `stale-allowlist-entry`
/// findings); an empty vec means the tree is clean.
///
/// # Errors
/// I/O failure walking the tree, or an unparseable allowlist (a malformed
/// allowlist must fail the build, not silently waive nothing).
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_PATH))
        .map_err(|e| format!("cannot read {ALLOWLIST_PATH}: {e}"))?;
    let allow = Allowlist::parse(&allow_text)?;
    let files = scanned_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut violations = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        violations.extend(lint_source(&rel, &text));
        sources.push((rel, text));
    }
    // The metric-name catalog check is cross-file (registration sites vs
    // docs/observability.md), so it runs once over the whole scanned set.
    // A missing catalog reads as empty: every registered metric is then an
    // undocumented-name violation, which is the failure mode we want.
    let catalog = std::fs::read_to_string(root.join("docs/observability.md")).unwrap_or_default();
    violations.extend(rules::rule_metric_registry(&sources, &catalog));
    let resolve = |path: &str, line: usize| -> Option<String> {
        let text = std::fs::read_to_string(root.join(path)).ok()?;
        text.lines().nth(line.checked_sub(1)?).map(str::to_owned)
    };
    Ok(allow.apply(violations, resolve))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        assert!(root.join("crates/gps-core").is_dir());
    }

    #[test]
    fn scanned_files_cover_all_crates_and_skip_fixtures() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let files = scanned_files(&root).unwrap();
        let rels: Vec<String> = files
            .iter()
            .map(|f| {
                f.strip_prefix(&root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        assert!(rels.iter().any(|r| r == "crates/gps-core/src/lib.rs"));
        assert!(rels.iter().any(|r| r == "crates/compat/rand/src/lib.rs"));
        assert!(rels.iter().any(|r| r == "src/lib.rs"));
        assert!(rels.iter().any(|r| r.starts_with("examples/")));
        assert!(
            !rels.iter().any(|r| r.contains("tests/fixtures")),
            "fixture violations must not be scanned as workspace source"
        );
    }
}
