//! Offline stand-in for the `proptest` crate, covering the API subset this
//! workspace uses: the [`proptest!`] macro, `prop_assert*!`, the [`Strategy`]
//! trait with [`Strategy::prop_map`], range and tuple strategies,
//! [`any`]`::<T>()`, and [`prop::collection::vec`].
//!
//! Each property runs a fixed number of randomly generated cases (default
//! 64, override with the `PROPTEST_CASES` environment variable). Case RNGs
//! are seeded deterministically from the property name, so failures
//! reproduce run-to-run; on failure every generated input is printed before
//! the panic propagates. There is no shrinking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::Range;
use rand::rngs::SmallRng;
use rand::Rng;

/// Re-exports used by the [`proptest!`] macro; not public API.
#[doc(hidden)]
pub use rand::rngs::SmallRng as __SmallRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Returns a strategy generating `f(v)` for `v` drawn from `self`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.random()
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use core::ops::Range;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy for `Vec`s with element strategy `S` and a length drawn
        /// from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is uniform in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Number of cases to run per property (`PROPTEST_CASES`, default 64).
#[doc(hidden)]
pub fn __cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-property seed derived from the property's name (FNV-1a).
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Supported form:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<u64>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::__cases();
            let __seed = $crate::__seed_for(stringify!($name));
            for __case in 0..__cases {
                let mut __rng = <$crate::__SmallRng as $crate::__SeedableRng>::seed_from_u64(
                    __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest: property `{}` failed on case {}/{} with inputs:",
                        stringify!($name), __case + 1, __cases,
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), &$arg);)+
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )+};
}

/// `assert!` under the name property-test bodies expect.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under the name property-test bodies expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under the name property-test bodies expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 1u32..10,
            pair in (0usize..5, 0.0f64..1.0),
            s in any::<u64>(),
        ) {
            let (a, b) = pair;
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b));
            let _ = s;
        }

        #[test]
        fn vec_and_prop_map_compose(
            v in prop::collection::vec((0u32..8, 0u32..8), 0..20).prop_map(|pairs| {
                pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<u32>>()
            }),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&s| s < 15));
        }
    }

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        assert_eq!(crate::__seed_for("abc"), crate::__seed_for("abc"));
        assert_ne!(crate::__seed_for("abc"), crate::__seed_for("abd"));
    }
}
