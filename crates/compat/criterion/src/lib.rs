//! Offline stand-in for the `criterion` crate, covering the API subset this
//! workspace's benches use: [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`], and
//! [`black_box`].
//!
//! Unlike a pure compile shim it is a real (if minimal) harness: each
//! benchmark is warmed up, then timed for `sample_size` samples, and a
//! min/mean/max line — with derived throughput when declared — is printed to
//! stdout. There is no statistical analysis, HTML report, or baseline
//! comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Declares how much work one iteration performs, for derived rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine`, one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is not
    /// included in the sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named family of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput lines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // One untimed warmup pass so cold caches don't pollute the samples.
        let mut warmup = Bencher::new(1);
        f(&mut warmup);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            &b.samples,
            self.throughput,
        );
        let _ = &self.criterion;
        self
    }

    /// Finishes the group. (No-op beyond matching criterion's API.)
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Same untimed warmup as the group path, so the two entry points
        // produce comparable numbers.
        let mut warmup = Bencher::new(1);
        f(&mut warmup);
        let mut b = Bencher::new(10);
        f(&mut b);
        report(&id, &b.samples, None);
        self
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = throughput.map(|t| {
        let secs = mean.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Elements(n) => format!("  {:.3} Melem/s", n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!("  {:.3} MiB/s", n as f64 / secs / (1 << 20) as f64),
        }
    });
    println!(
        "{id:<40} [min {min:>10.3?}  mean {mean:>10.3?}  max {max:>10.3?}]{}",
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into one runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("collect", |b| {
            b.iter_batched(
                || (0..100u64).collect::<Vec<_>>(),
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_harness_run() {
        benches();
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
    }
}
