//! Offline stand-in for the `rand` crate, exposing the 0.9-style API subset
//! this workspace uses: [`Rng`] (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ (the family the real `SmallRng` uses on 64-bit
//! targets) seeded through SplitMix64, so streams are deterministic per seed
//! and of high statistical quality — the workspace's statistical tests depend
//! on both properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the full range,
    /// `bool` fair).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Range types usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform sampling of a `u64` in `[0, width)` by widening multiply
/// (Lemire's unbiased-enough fast path; bias is < 2^-64 per draw).
fn sample_below<R: RngCore>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_below(rng, width + 1) as $t)
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = f64::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_hit_all_values_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac} far from 0.25");
    }
}
