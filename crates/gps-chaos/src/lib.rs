//! Deterministic chaos harness for the fault-tolerant sharded GPS engine.
//!
//! This crate packages the repo's failure testing into reusable *scenarios*:
//! an edge stream, an engine configuration, and a scripted [`FaultPlan`]
//! run to completion, with everything
//! the caller needs for exact assertions returned in a [`ScenarioOutcome`].
//! Because every fault trigger, checkpoint, and loss window in the engine is
//! keyed on per-shard arrival counts — never wall-clock time — a scenario
//! with a fixed seed is **bit-reproducible**: the integration suites here
//! assert `f64::to_bits`-level equality across repeated runs instead of
//! tolerances, and `gps-bench --chaos` reuses the same runners to report
//! recovery metrics.
//!
//! The three suites under `tests/` pin the fault-tolerance contract:
//!
//! - `reproducibility` — same seed + same plan ⇒ identical estimates (to
//!   the bit) and an identical incident ledger, across crash-and-restore
//!   and corrupt-checkpoint scenarios.
//! - `crash_unbiasedness` — a supervised crash + checkpoint restore leaves
//!   the HT estimators unbiased over many independent seeds (the mean
//!   tracks exact ground truth as tightly as the unfaulted engine suite).
//! - `degraded_serve` — a crashed *serving* shard restarts from its
//!   checkpoint and the epoch stream stays monotone, ends full, and
//!   reconciles with the engine's loss accounting.

#![forbid(unsafe_code)]

use gps_core::weights::EdgeWeight;
use gps_core::TriadEstimates;
use gps_engine::{EngineConfig, EngineHealth, FaultPlan, ShardedGps};
use gps_graph::types::Edge;
use gps_telemetry::TelemetrySnapshot;

/// Bit-level fingerprint of an estimate bundle: the five independently
/// stored floats of a [`TriadEstimates`] (clustering is derived), as raw
/// bits. Two outcomes with equal fingerprints are *the same estimate*, not
/// merely close — the currency of the reproducibility suites.
pub fn fingerprint(estimates: &TriadEstimates) -> [u64; 5] {
    [
        estimates.triangles.value.to_bits(),
        estimates.triangles.variance.to_bits(),
        estimates.wedges.value.to_bits(),
        estimates.wedges.variance.to_bits(),
        estimates.tri_wedge_cov.to_bits(),
    ]
}

/// Everything a chaos scenario run produces, captured for exact assertions.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Merged post-stream estimates (loss-widened if the run degraded).
    pub estimate: TriadEstimates,
    /// Merged in-stream estimates (loss-widened if the run degraded).
    pub in_stream: TriadEstimates,
    /// The engine's incident ledger: who failed, what was lost, how many
    /// restarts. Deterministic for a fixed seed and plan.
    pub health: EngineHealth,
    /// Arrivals offered to the engine (the full stream length).
    pub pushed: u64,
    /// Telemetry snapshot taken after the engine finished. Its
    /// [`TelemetrySnapshot::stable`] subset (arrival/checkpoint/restart/
    /// sampler counters) is a pure function of seed + config + plan and is
    /// asserted bit-identical across same-seed runs by the reproducibility
    /// suite; `Timing`-class entries (queue depth high-water) and the event
    /// ring order may vary with thread scheduling.
    pub telemetry: TelemetrySnapshot,
}

impl ScenarioOutcome {
    /// True when the run recorded at least one incident.
    pub fn degraded(&self) -> bool {
        self.health.degraded()
    }
}

/// Runs one estimating engine over `stream` with `faults` injected and
/// returns the outcome. The engine must survive whatever the plan throws at
/// it — a terminal engine error here is a harness bug, so it panics with
/// the underlying error.
///
/// `cfg.checkpoint_every > 0` arms supervision (crashed shards restart
/// from their checkpoints); `0` leaves faults fatal, which chaos scenarios
/// generally do not want.
pub fn run_engine_scenario<W: EdgeWeight + Clone + Send + 'static>(
    cfg: EngineConfig,
    weight_fn: W,
    stream: impl IntoIterator<Item = Edge>,
    faults: FaultPlan,
) -> ScenarioOutcome {
    let mut engine = ShardedGps::with_estimation_and_faults(cfg, weight_fn, None, faults);
    engine.push_stream(stream);
    engine.finish();
    ScenarioOutcome {
        estimate: engine.estimate(),
        in_stream: engine.estimate_in_stream(),
        health: engine.health().clone(),
        pushed: engine.pushed(),
        telemetry: engine.telemetry(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_core::weights::UniformWeight;

    #[test]
    fn fingerprints_separate_distinct_estimates() {
        let a = TriadEstimates::from_parts(
            gps_core::Estimate {
                value: 1.0,
                variance: 2.0,
            },
            gps_core::Estimate {
                value: 3.0,
                variance: 4.0,
            },
            5.0,
        );
        let b = TriadEstimates::from_parts(
            gps_core::Estimate {
                value: 1.0,
                variance: 2.0,
            },
            gps_core::Estimate {
                value: 3.0,
                variance: 4.5,
            },
            5.0,
        );
        assert_eq!(fingerprint(&a), fingerprint(&a));
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn unfaulted_scenario_is_clean() {
        let cfg = EngineConfig {
            checkpoint_every: 16,
            ..EngineConfig::new(16, 2, 3)
        };
        let stream = (0..100u32).map(|i| Edge::new(i, i + 1));
        let out = run_engine_scenario(cfg, UniformWeight, stream, FaultPlan::new());
        assert!(!out.degraded());
        assert_eq!(out.pushed, 100);
        assert_eq!(out.health, EngineHealth::default());
    }
}
