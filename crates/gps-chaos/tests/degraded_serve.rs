//! Chaos at the serving layer: a crashed shard restarts from its
//! checkpoint *while epochs are being served*, and the books balance.
//!
//! The board must keep its guarantees through the crash: versions stay
//! strictly monotone, the final epoch merges every shard, its watermark
//! equals arrivals offered minus arrivals the engine admits losing, and
//! the engine-level estimates carry the loss in wider — never narrower —
//! intervals than the epoch's merge-only variances.
//!
//! The gated scenario runs on the deterministic clock hook
//! ([`ClockMode::Manual`]): the publication gate compares *virtual*
//! timestamps that never move unless the test moves them, so the
//! gate-expiry branch is exercised — or provably not exercised — without
//! any sleep-tuned margins against real scheduling.

use gps_core::weights::TriangleWeight;
use gps_engine::{EngineConfig, FaultPlan};
use gps_serve::{ClockMode, EstimateEpoch, ServeConfig, ServeEngine};
use gps_stream::{gen, permuted};

#[test]
fn serving_engine_survives_a_crash_and_accounts_the_loss() {
    let edges = permuted(&gen::collaboration(300, 260, (3, 6), 0.5, 11), 5);
    let cfg = ServeConfig {
        engine: EngineConfig {
            batch: 16,
            epoch_every: 32,
            checkpoint_every: 32,
            ..EngineConfig::new(edges.len() / 4, 2, 13)
        },
        subscribe_depth: 4096,
        gate_timeout: None,
        clock: ClockMode::Wall,
    };
    let faults = FaultPlan::new().panic_at(1, 100);
    let mut serve = ServeEngine::with_config_and_faults(cfg, TriangleWeight::default(), faults);
    let handle = serve.handle();
    let sub = handle.subscribe().expect("live engine");
    serve.push_stream(edges.iter().copied());
    serve.finish();

    let health = serve.health().clone();
    assert!(
        health.degraded(),
        "the scripted crash must be on the ledger"
    );
    assert_eq!(health.incidents.len(), 1);
    assert_eq!(health.incidents[0].shard, 1);
    assert_eq!(health.incidents[0].restarts, 1);
    assert!(health.lost_arrivals > 0);

    let epochs: Vec<EstimateEpoch> = sub.collect();
    assert!(
        epochs.windows(2).all(|w| w[0].version < w[1].version),
        "versions must stay strictly monotone through the crash"
    );
    let last = epochs.last().expect("finish publishes a final epoch");
    assert!(!last.degraded(), "ungated board only publishes full epochs");
    // The watermark is what the engine actually consumed: everything
    // offered, minus exactly the crash window it admits losing.
    assert_eq!(last.edges_seen, serve.pushed() - health.lost_arrivals);

    // The loss-aware engine estimate keeps the epoch's point values (the
    // merge is the same) but must widen the intervals for the lost window.
    let widened = serve.estimate_in_stream();
    assert_eq!(
        widened.triangles.value.to_bits(),
        last.estimates.triangles.value.to_bits(),
        "loss widening must not move the point estimate"
    );
    assert!(
        widened.triangles.variance > last.estimates.triangles.variance,
        "lost arrivals must widen, never narrow, the interval"
    );
    assert!(widened.wedges.variance > last.estimates.wedges.variance);
}

/// A *gated* serving engine on the manual clock, crashed mid-stream:
/// virtual time never reaches the gate deadline, so the board must keep
/// withholding partial merges — every published epoch is full — while the
/// crash, checkpoint restore, and loss accounting all proceed underneath.
/// Deterministic by construction: the gate can never expire, no matter how
/// slowly the restore path runs on a loaded machine.
#[test]
fn unexpired_virtual_gate_keeps_epochs_full_through_a_crash() {
    let edges = permuted(&gen::collaboration(300, 260, (3, 6), 0.5, 11), 6);
    let cfg = ServeConfig {
        engine: EngineConfig {
            batch: 16,
            epoch_every: 32,
            checkpoint_every: 32,
            ..EngineConfig::new(edges.len() / 4, 2, 17)
        },
        subscribe_depth: 4096,
        gate_timeout: Some(std::time::Duration::from_millis(50)),
        clock: ClockMode::Manual,
    };
    let faults = FaultPlan::new().panic_at(1, 100);
    let mut serve = ServeEngine::with_config_and_faults(cfg, TriangleWeight::default(), faults);
    let handle = serve.handle();
    let sub = handle.subscribe().expect("live engine");
    serve.push_stream(edges.iter().copied());
    serve.finish();

    let health = serve.health().clone();
    assert!(
        health.degraded(),
        "the scripted crash must be on the ledger"
    );
    assert!(health.lost_arrivals > 0);

    let epochs: Vec<EstimateEpoch> = sub.collect();
    assert!(!epochs.is_empty());
    assert!(
        epochs.windows(2).all(|w| w[0].version < w[1].version),
        "versions stay strictly monotone"
    );
    // Virtual now stays at 0, strictly inside the 50 ms gate: the expired-
    // gate branch is unreachable, so no partial merge may ever publish.
    assert!(
        epochs.iter().all(|e| !e.degraded()),
        "an unexpired gate must withhold every partial merge"
    );
    let last = epochs.last().expect("final epoch");
    assert_eq!(last.contributing, 0b11);
    assert_eq!(last.edges_seen, serve.pushed() - health.lost_arrivals);
}
