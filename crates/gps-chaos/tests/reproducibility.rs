//! Chaos acceptance: a seeded fault scenario is **bit-reproducible**.
//!
//! Every fault trigger, checkpoint watermark, restart seed, and loss window
//! in the engine is keyed on per-shard arrival counts, so running the same
//! scenario twice must produce identical estimates (`f64::to_bits`-level)
//! and an identical incident ledger — no tolerances, no "approximately the
//! same crash". This is what makes chaos failures debuggable: a failing
//! seed replays exactly.
//!
//! The committed seeds are shifted by `GPS_SEED_OFFSET` when set, so CI
//! re-runs the whole suite under a small seed matrix — the contract is
//! "every seed replays exactly", and a matrix keeps the assertions from
//! overfitting one lucky seed. The scenario shape (which shard crashes,
//! at which arrival count) stays fixed; only the coloring/sampling/stream
//! randomness moves.

use gps_chaos::{fingerprint, run_engine_scenario, ScenarioOutcome};
use gps_core::weights::TriangleWeight;
use gps_engine::{EngineConfig, FaultPlan};
use gps_stream::{gen, permuted};

/// Suite seed: the committed base shifted by the CI matrix offset.
fn seed(base: u64) -> u64 {
    let offset = std::env::var("GPS_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base + offset
}

fn crash_scenario(seed: u64, plan: FaultPlan) -> ScenarioOutcome {
    let edges = gen::collaboration(300, 260, (3, 6), 0.5, 11);
    let cfg = EngineConfig {
        batch: 16,
        checkpoint_every: 32,
        ..EngineConfig::new(edges.len() / 4, 4, seed)
    };
    run_engine_scenario(cfg, TriangleWeight::default(), permuted(&edges, seed), plan)
}

#[test]
fn crashed_and_restored_run_is_bit_reproducible() {
    // ISSUE acceptance: seeded FaultPlan panicking one shard at S = 4 —
    // the engine survives, restarts from its checkpoint, and two
    // invocations with the same seed agree to the bit.
    let runs: Vec<ScenarioOutcome> = (0..2)
        .map(|_| crash_scenario(seed(97), FaultPlan::new().panic_at(2, 150)))
        .collect();
    let (a, b) = (&runs[0], &runs[1]);
    assert!(a.degraded(), "the injected crash must be on the ledger");
    assert_eq!(a.health, b.health, "incident ledgers must be identical");
    assert_eq!(fingerprint(&a.estimate), fingerprint(&b.estimate));
    assert_eq!(fingerprint(&a.in_stream), fingerprint(&b.in_stream));
    assert_eq!(a.pushed, b.pushed);
    // The Stable telemetry subset — arrivals, batches, checkpoints,
    // restarts, losses, sampler activity — is a pure function of
    // seed + config + plan: bit-identical snapshots, bit-identical
    // renderings.
    let (sa, sb) = (a.telemetry.stable(), b.telemetry.stable());
    assert_eq!(sa, sb, "stable telemetry must replay exactly");
    assert_eq!(sa.fingerprint(), sb.fingerprint());
    // And it agrees with the independent ledgers of the run.
    assert_eq!(
        sa.counter_value("gps_engine_lost_arrivals_total"),
        Some(a.health.lost_arrivals)
    );
    assert_eq!(sa.counter_value("gps_engine_restarts_total"), Some(1));
    // The ledger itself is exact: one crash, restarted once, with the
    // (checkpoint, crash] window — at most one checkpoint interval plus
    // the in-flight batch — lost and accounted.
    assert_eq!(a.health.incidents.len(), 1);
    let incident = &a.health.incidents[0];
    assert_eq!(incident.shard, 2);
    assert_eq!(incident.restarts, 1);
    assert!(!incident.stalled && !incident.checkpoint_corrupt);
    assert!(incident.lost_arrivals > 0, "crash past a checkpoint loses");
    assert!(
        incident.lost_arrivals <= 32 + 16,
        "bounded by cadence + batch"
    );
    assert_eq!(a.health.lost_arrivals, incident.lost_arrivals);
}

#[test]
fn corrupt_checkpoint_scenario_is_bit_reproducible() {
    // Harder path: the recovery checkpoint itself is corrupted, forcing a
    // from-scratch restart with the whole prefix lost — still exactly
    // reproducible.
    let plan = || {
        FaultPlan::new()
            .corrupt_checkpoints_at(1, 0)
            .panic_at(1, 100)
    };
    let a = crash_scenario(seed(41), plan());
    let b = crash_scenario(seed(41), plan());
    assert_eq!(a.health, b.health);
    assert_eq!(fingerprint(&a.estimate), fingerprint(&b.estimate));
    assert_eq!(fingerprint(&a.in_stream), fingerprint(&b.in_stream));
    let incident = &a.health.incidents[0];
    assert!(incident.checkpoint_corrupt, "corruption must be flagged");
    assert_eq!(
        incident.lost_arrivals, 100,
        "from-scratch restart loses the shard's whole consumed prefix"
    );
}

#[test]
fn different_seeds_actually_change_the_run() {
    // Guard against the reproducibility assertions passing vacuously
    // (e.g. constant estimates): a different seed must change the bits.
    let a = crash_scenario(seed(97), FaultPlan::new().panic_at(2, 150));
    let b = crash_scenario(seed(98), FaultPlan::new().panic_at(2, 150));
    assert_ne!(fingerprint(&a.estimate), fingerprint(&b.estimate));
}
