//! Chaos acceptance: loss-widened confidence intervals are **honest**.
//!
//! `crash_unbiasedness.rs` pins that the point estimates stay centered
//! after crash + restore; this suite pins the *interval* contract of
//! [`TriadEstimates::widened_for_loss`]: over many independent (coloring,
//! sampling, stream-order, crash-site) draws, the widened 95% intervals
//! cover exact ground truth at no worse than nominal-minus-slack, and the
//! widening only ever grows the interval — per draw against the same
//! run's unwidened merge, and on average against a faultless twin of
//! every run. A widening bug that shrank variance, dropped the loss
//! fraction, or widened the wrong component fails one of the three pins.

use gps_chaos::run_engine_scenario;
use gps_core::weights::TriangleWeight;
use gps_core::{Estimate, TriadEstimates};
use gps_engine::{EngineConfig, FaultPlan};
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use gps_stream::{gen, permuted};

/// Undoes [`TriadEstimates::widened_for_loss`] exactly: the widening adds
/// `(f·value)²` to each variance and leaves values and covariance alone,
/// so the pre-widening merge is recoverable bit-for-bit from the outcome's
/// loss ledger.
fn unwidened(est: &TriadEstimates, lost_fraction: f64) -> TriadEstimates {
    let strip = |e: &Estimate| Estimate {
        value: e.value,
        variance: e.variance - (lost_fraction * e.value) * (lost_fraction * e.value),
    };
    TriadEstimates::from_parts(strip(&est.triangles), strip(&est.wedges), est.tri_wedge_cov)
}

fn half_width(e: &Estimate) -> f64 {
    1.96 * e.variance.sqrt()
}

#[test]
fn widened_intervals_cover_truth_and_never_narrow_at_s4() {
    let edges = gen::collaboration(500, 420, (3, 6), 0.5, 11);
    let g = CsrGraph::from_edges(&edges);
    let tri_truth = exact::triangle_count(&g) as f64;
    let wedge_truth = exact::wedge_count(&g) as f64;

    let shards = 4usize;
    let runs = 48u64;
    let (mut tri_covered, mut wedge_covered) = (0usize, 0usize);
    let (mut crashed_tri_w, mut clean_tri_w) = (0.0f64, 0.0f64);
    let (mut crashed_wedge_w, mut clean_wedge_w) = (0.0f64, 0.0f64);
    for run in 0..runs {
        let stream: Vec<Edge> = permuted(&edges, 7_000 + run);
        let cfg = EngineConfig {
            batch: 16,
            checkpoint_every: 8,
            ..EngineConfig::new(edges.len() / 4, shards, 100 + run)
        };
        let crash_shard = (run % shards as u64) as usize;
        let crash_at = 40 + (run % 7) * 11;
        let plan = FaultPlan::new().panic_at(crash_shard, crash_at);
        let out = run_engine_scenario(cfg, TriangleWeight::default(), stream.clone(), plan);
        assert!(out.degraded(), "run {run}: the scripted crash must fire");
        let lost = out.health.lost_arrivals;
        assert!(lost > 0, "run {run}: a mid-window crash must lose arrivals");

        // Coverage of the widened intervals against exact truth.
        let (tlo, thi) = out.estimate.triangles.ci95();
        let (wlo, whi) = out.estimate.wedges.ci95();
        tri_covered += usize::from(tlo <= tri_truth && tri_truth <= thi);
        wedge_covered += usize::from(wlo <= wedge_truth && wedge_truth <= whi);

        // Per draw: widening strictly grows the interval vs the same run's
        // unwidened merge (values are positive and arrivals were lost).
        let f = lost as f64 / out.pushed as f64;
        let raw = unwidened(&out.estimate, f);
        assert!(
            half_width(&out.estimate.triangles) > half_width(&raw.triangles),
            "run {run}: widening must grow the triangle interval"
        );
        assert!(
            half_width(&out.estimate.wedges) > half_width(&raw.wedges),
            "run {run}: widening must grow the wedge interval"
        );

        // Faultless twin of the same draw, for the aggregate comparison.
        let clean = run_engine_scenario(cfg, TriangleWeight::default(), stream, FaultPlan::new());
        assert!(!clean.degraded(), "run {run}: twin must stay clean");
        crashed_tri_w += half_width(&out.estimate.triangles);
        clean_tri_w += half_width(&clean.estimate.triangles);
        crashed_wedge_w += half_width(&out.estimate.wedges);
        clean_wedge_w += half_width(&clean.estimate.wedges);
    }

    // Nominal 95% over 48 draws is ≈ 45.6 (measured: 45 and 43); allow
    // slack for the variance of the variance estimate at S=4, but stay
    // close to nominal.
    assert!(
        tri_covered >= 40,
        "widened triangle CI covered truth only {tri_covered}/{runs} times"
    );
    assert!(
        wedge_covered >= 40,
        "widened wedge CI covered truth only {wedge_covered}/{runs} times"
    );

    // On average, the degraded intervals stay in the clean twins' regime
    // or wider. The tight checkpoint cadence makes the deterministic
    // widening term tiny (f ≈ 0.002), so the comparison is dominated by
    // post-restore draw noise (measured within 3% of the twins): the 5%
    // allowance still catches any widening bug that *shrinks* variance,
    // while the strict per-draw pin above is the exact never-narrower
    // contract.
    assert!(
        crashed_tri_w >= 0.95 * clean_tri_w,
        "mean widened triangle interval ({:.1}) well below clean ({:.1})",
        crashed_tri_w / runs as f64,
        clean_tri_w / runs as f64
    );
    assert!(
        crashed_wedge_w >= 0.95 * clean_wedge_w,
        "mean widened wedge interval ({:.1}) well below clean ({:.1})",
        crashed_wedge_w / runs as f64,
        clean_wedge_w / runs as f64
    );
}
