//! Chaos acceptance: estimates stay **unbiased after crash + restore**.
//!
//! A supervised crash rolls the shard back to its last checkpoint and
//! replays the surviving queue; with a tight checkpoint cadence the lost
//! window is a few arrivals out of thousands, so the HT estimators must
//! keep tracking exact ground truth over many independent (coloring,
//! sampling, stream-order, crash-site) draws — the same protocol and
//! tolerances as the unfaulted engine suite in
//! `gps-engine/tests/statistical.rs`. A recovery bug that reloaded the
//! wrong sample, double-counted replayed arrivals, or broke HT
//! normalization shifts the mean far outside the tolerance.

use gps_chaos::run_engine_scenario;
use gps_core::weights::TriangleWeight;
use gps_engine::{EngineConfig, FaultPlan};
use gps_graph::csr::CsrGraph;
use gps_graph::exact;
use gps_graph::types::Edge;
use gps_stream::{gen, permuted};

#[test]
fn crashed_and_restored_estimates_stay_unbiased_at_s4() {
    let edges = gen::collaboration(500, 420, (3, 6), 0.5, 11);
    let g = CsrGraph::from_edges(&edges);
    let tri_truth = exact::triangle_count(&g) as f64;
    let wedge_truth = exact::wedge_count(&g) as f64;
    assert!(tri_truth > 500.0, "stream must be triangle-rich");

    let shards = 4usize;
    let runs = 48u64;
    let (mut tri_sum, mut wedge_sum) = (0.0, 0.0);
    for run in 0..runs {
        let stream: Vec<Edge> = permuted(&edges, 7_000 + run);
        let cfg = EngineConfig {
            batch: 16,
            // Tight cadence: a crash loses at most one checkpoint
            // interval — small against the shard's whole substream, so
            // any residual bias from the lost window is far below the
            // tolerance (unlike a recovery bug, which is not).
            checkpoint_every: 8,
            ..EngineConfig::new(edges.len() / 4, shards, 100 + run)
        };
        // Rotate the crash across shards and sites so no single recovery
        // path can hide: shard `run % 4`, mid-substream.
        let crash_shard = (run % shards as u64) as usize;
        let crash_at = 40 + (run % 7) * 11;
        let plan = FaultPlan::new().panic_at(crash_shard, crash_at);
        let out = run_engine_scenario(cfg, TriangleWeight::default(), stream, plan);
        assert!(
            out.degraded(),
            "run {run}: the scripted crash must have fired"
        );
        assert_eq!(
            out.health.incidents.len(),
            1,
            "run {run}: exactly one crash"
        );
        assert_eq!(out.health.incidents[0].shard, crash_shard);
        tri_sum += out.estimate.triangles.value;
        wedge_sum += out.estimate.wedges.value;
    }
    let tri_mean = tri_sum / runs as f64;
    let wedge_mean = wedge_sum / runs as f64;
    assert!(
        (tri_mean - tri_truth).abs() / tri_truth < 0.10,
        "triangle mean {tri_mean} vs truth {tri_truth}"
    );
    assert!(
        (wedge_mean - wedge_truth).abs() / wedge_truth < 0.10,
        "wedge mean {wedge_mean} vs truth {wedge_truth}"
    );
}
