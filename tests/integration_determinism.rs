//! Determinism and sample-identity guarantees the experiments rely on
//! (paper §6: "both GPS post and in-stream estimation randomly select the
//! same set of edges with the same random seeds").

use graph_priority_sampling::prelude::*;

fn workload() -> Vec<Edge> {
    gps_stream::gen::holme_kim(1_500, 3, 0.5, 77)
}

#[test]
fn same_seed_same_sample_across_estimation_modes() {
    let edges = workload();
    let stream = permuted(&edges, 9);
    let m = edges.len() / 6;

    let mut bare = GpsSampler::new(m, TriangleWeight::default(), 1234);
    for &e in &stream {
        bare.process(e);
    }
    let mut wrapped = InStreamEstimator::new(m, TriangleWeight::default(), 1234);
    for &e in &stream {
        wrapped.process(e);
    }

    let mut sample_a: Vec<Edge> = bare.edges().map(|s| s.edge).collect();
    let mut sample_b: Vec<Edge> = wrapped.sampler().edges().map(|s| s.edge).collect();
    sample_a.sort();
    sample_b.sort();
    assert_eq!(sample_a, sample_b);
    assert_eq!(bare.threshold(), wrapped.sampler().threshold());

    // And post-stream estimation on both samplers agrees exactly.
    let ea = post_stream::estimate(&bare);
    let eb = post_stream::estimate(wrapped.sampler());
    assert_eq!(ea.triangles.value, eb.triangles.value);
    assert_eq!(ea.wedges.variance, eb.wedges.variance);
}

#[test]
fn whole_pipeline_is_reproducible() {
    let run = || {
        let edges = workload();
        let stream = permuted(&edges, 42);
        let mut est = InStreamEstimator::new(edges.len() / 8, TriangleWeight::default(), 7);
        for e in stream {
            est.process(e);
        }
        let t = est.estimates();
        (
            t.triangles.value,
            t.triangles.variance,
            t.wedges.value,
            t.clustering.value,
        )
    };
    assert_eq!(
        run(),
        run(),
        "same seeds must reproduce bit-identical results"
    );
}

#[test]
fn different_stream_orders_give_different_samples_but_both_unbiasedish() {
    let edges = workload();
    let m = edges.len() / 6;
    let mut samples = vec![];
    for perm_seed in [1u64, 2] {
        let mut sampler = GpsSampler::new(m, TriangleWeight::default(), 5);
        for e in permuted(&edges, perm_seed) {
            sampler.process(e);
        }
        let mut s: Vec<Edge> = sampler.edges().map(|x| x.edge).collect();
        s.sort();
        samples.push(s);
    }
    assert_ne!(
        samples[0], samples[1],
        "different orders should sample differently"
    );
}

#[test]
fn baselines_are_seed_deterministic_too() {
    let edges = workload();
    let stream = permuted(&edges, 4);
    let run = |seed: u64| {
        let mut t = gps_baselines::TriestImpr::new(200, seed);
        for &e in &stream {
            t.process(e);
        }
        t.triangle_estimate()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}
