//! Facade API coverage: the README / docs workflows compile and behave as
//! documented, including the extension features (motif counting, subset
//! sums, custom weights).

use graph_priority_sampling::core::subset;
use graph_priority_sampling::core::weights::FnWeight;
use graph_priority_sampling::prelude::*;

#[test]
fn readme_quickstart_flow() {
    let edges = gps_stream::gen::holme_kim(2_000, 3, 0.5, 7);
    let stream = gps_stream::permuted(&edges, 99);
    let mut est = InStreamEstimator::new(edges.len() / 6, TriangleWeight::default(), 42);
    for e in stream {
        est.process(e);
    }
    let triads = est.estimates();
    let (lb, ub) = triads.triangles.ci95();
    assert!(lb <= triads.triangles.value && triads.triangles.value <= ub);
    assert!(triads.wedges.value > 0.0);
}

#[test]
fn four_clique_counting_via_motif_snapshots() {
    // K6 contains C(6,4) = 15 four-cliques; full retention counts exactly.
    let mut edges = vec![];
    for a in 0..6u32 {
        for b in (a + 1)..6 {
            edges.push(Edge::new(a, b));
        }
    }
    let mut counter = graph_priority_sampling::core::snapshot::four_clique_counter(100, 5);
    for e in permuted(&edges, 3) {
        counter.process(e);
    }
    assert!((counter.estimate() - 15.0).abs() < 1e-9);
}

#[test]
fn four_clique_estimates_are_unbiased_under_sampling() {
    // Subsampled 4-clique estimation over many seeds approaches the truth:
    // K7 has C(7,4) = 35 four-cliques.
    let mut edges = vec![];
    for a in 0..7u32 {
        for b in (a + 1)..7 {
            edges.push(Edge::new(a, b));
        }
    }
    let runs = 600;
    let mut sum = 0.0;
    for seed in 0..runs {
        let mut counter = graph_priority_sampling::core::snapshot::four_clique_counter(15, seed);
        for e in permuted(&edges, seed ^ 0x5a5a) {
            counter.process(e);
        }
        sum += counter.estimate();
    }
    let mean = sum / runs as f64;
    assert!(
        (mean - 35.0).abs() / 35.0 < 0.25,
        "4-clique estimator mean {mean} should approach 35"
    );
}

#[test]
fn subset_sums_with_custom_weights() {
    let edges: Vec<Edge> = (0..500).map(|i| Edge::new(i, i + 1)).collect();
    let value = |e: Edge| (e.u() % 7) as f64;
    let actual: f64 = edges.iter().map(|&e| value(e)).sum();

    let weight =
        FnWeight(move |e: Edge, _: &graph_priority_sampling::core::SampleView<'_>| value(e) + 0.5);
    let mut sampler = GpsSampler::new(120, weight, 3);
    for e in permuted(&edges, 8) {
        sampler.process(e);
    }
    let est = subset::edge_total(&sampler, value);
    assert!(est.value > 0.0);
    // Weighted sampling keeps this well within 30% even at a 24% sample.
    assert!(
        (est.value - actual).abs() / actual < 0.3,
        "estimate {} vs actual {actual}",
        est.value
    );
}

#[test]
fn arrival_outcomes_are_observable() {
    let mut sampler = GpsSampler::new(1, UniformWeight, 3);
    assert!(matches!(
        sampler.process(Edge::new(0, 1)),
        Arrival::Inserted { .. }
    ));
    assert!(matches!(
        sampler.process(Edge::new(0, 1)),
        Arrival::Duplicate
    ));
    let outcome = sampler.process(Edge::new(1, 2));
    assert!(matches!(
        outcome,
        Arrival::Replaced { .. } | Arrival::Rejected { .. }
    ));
}

#[test]
fn stats_utilities_are_reachable_from_the_facade() {
    use graph_priority_sampling::stats::{si, ErrorSeries, Running, Table};
    assert_eq!(si(4_900_000_000.0), "4.9B");
    let mut r = Running::new();
    r.push(1.0);
    r.push(3.0);
    assert_eq!(r.mean(), 2.0);
    let mut s = ErrorSeries::new();
    s.push(11.0, 10.0);
    assert!((s.mare() - 0.1).abs() < 1e-12);
    let mut t = Table::new(["a"]);
    t.row(["1"]);
    assert!(t.render().contains('a'));
}

#[test]
fn checkpoints_drive_mixed_estimators() {
    let edges = gps_stream::gen::erdos_renyi(200, 600, 3);
    let cps = Checkpoints::geometric(100, edges.len(), 2.0);
    let est = std::cell::RefCell::new(InStreamEstimator::new(100, TriangleWeight::default(), 1));
    let mut fired = 0;
    cps.drive(
        permuted(&edges, 5),
        |e| {
            est.borrow_mut().process(e);
        },
        |_t| fired += 1,
    );
    assert_eq!(fired, cps.positions().len());
    assert_eq!(est.borrow().sampler().arrivals() as usize, edges.len());
}
