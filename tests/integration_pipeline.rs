//! End-to-end pipeline tests across the whole corpus: generate → permute →
//! sample → estimate, through the public facade only.

use graph_priority_sampling::prelude::*;

/// Every corpus workload, built tiny.
fn tiny_workloads() -> Vec<(String, Vec<Edge>)> {
    gps_stream::corpus::all()
        .into_iter()
        .map(|spec| (spec.name.to_string(), spec.build(0.02, 11).edges))
        .collect()
}

#[test]
fn full_retention_reproduces_exact_counts_on_every_workload() {
    for (name, edges) in tiny_workloads() {
        let g = CsrGraph::from_edges(&edges);
        let exact_tri = gps_graph::exact::triangle_count(&g) as f64;
        let exact_wedge = gps_graph::exact::wedge_count(&g) as f64;

        let mut est = InStreamEstimator::new(edges.len() + 1, TriangleWeight::default(), 5);
        for e in permuted(&edges, 3) {
            est.process(e);
        }
        let triads = est.estimates();
        assert!(
            (triads.triangles.value - exact_tri).abs() < 1e-6 * (1.0 + exact_tri),
            "{name}: in-stream triangles {} != exact {exact_tri}",
            triads.triangles.value
        );
        assert!(
            (triads.wedges.value - exact_wedge).abs() < 1e-6 * (1.0 + exact_wedge),
            "{name}: in-stream wedges {} != exact {exact_wedge}",
            triads.wedges.value
        );

        let post = post_stream::estimate(est.sampler());
        assert!(
            (post.triangles.value - exact_tri).abs() < 1e-6 * (1.0 + exact_tri),
            "{name}: post-stream triangles {} != exact {exact_tri}",
            post.triangles.value
        );
    }
}

#[test]
fn subsampled_estimates_are_in_a_sane_range_on_every_workload() {
    // At 25% sampling the estimates will vary, but across the whole corpus
    // they must be finite, nonnegative, and within a loose factor of truth
    // for non-tiny counts.
    for (name, edges) in tiny_workloads() {
        let g = CsrGraph::from_edges(&edges);
        let exact_tri = gps_graph::exact::triangle_count(&g) as f64;
        let exact_wedge = gps_graph::exact::wedge_count(&g) as f64;
        let m = (edges.len() / 4).max(60);
        let mut est = InStreamEstimator::new(m, TriangleWeight::default(), 7);
        for e in permuted(&edges, 13) {
            est.process(e);
        }
        let triads = est.estimates();
        assert!(
            triads.triangles.value.is_finite() && triads.triangles.value >= 0.0,
            "{name}"
        );
        assert!(triads.wedges.value.is_finite(), "{name}");
        assert!(triads.triangles.variance >= 0.0, "{name}");
        if exact_wedge > 500.0 {
            let ratio = triads.wedges.value / exact_wedge;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{name}: wedge ratio {ratio} wildly off at 25% sampling"
            );
        }
        if exact_tri > 500.0 {
            let ratio = triads.triangles.value / exact_tri;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{name}: triangle ratio {ratio} wildly off at 25% sampling"
            );
        }
    }
}

#[test]
fn sample_size_is_exactly_m_for_every_workload() {
    for (name, edges) in tiny_workloads() {
        let m = (edges.len() / 5).max(10);
        let mut sampler = GpsSampler::new(m, TriangleWeight::default(), 3);
        for e in permuted(&edges, 1) {
            sampler.process(e);
        }
        assert_eq!(sampler.len(), m, "{name}: fixed-size property violated");
        // HT normalization: all inclusion probabilities in (0, 1].
        for se in sampler.edges() {
            assert!(
                se.inclusion_prob > 0.0 && se.inclusion_prob <= 1.0,
                "{name}"
            );
        }
    }
}

#[test]
fn edge_list_io_round_trips_through_files() {
    let edges = gps_stream::gen::holme_kim(300, 2, 0.4, 9);
    let dir = std::env::temp_dir().join("gps-io-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edges.txt");
    gps_graph::io::write_edge_list_file(&path, &edges).unwrap();
    let back =
        gps_graph::io::read_edge_list_file(&path, gps_graph::io::ReadOptions::default()).unwrap();
    assert_eq!(back.len(), edges.len());
    // Identical graph shape after relabeling.
    let a = CsrGraph::from_edges(&edges);
    let b = CsrGraph::from_edges(&back);
    assert_eq!(
        gps_graph::exact::triangle_count(&a),
        gps_graph::exact::triangle_count(&b)
    );
    std::fs::remove_file(&path).ok();
}
