//! Manifest-wiring smoke test: drives the whole documented pipeline —
//! generate → permute → sample → post-stream + in-stream estimate — through
//! `prelude::*` imports only, so any re-export regression in the facade (or
//! a broken inter-crate dependency edge in the manifests) fails this test
//! loudly instead of surfacing in downstream code.

use graph_priority_sampling::prelude::*;

#[test]
fn prelude_covers_the_full_pipeline_end_to_end() {
    // Generate: a stream with plenty of triangles, via the facade path.
    let edges = gps_stream::gen::holme_kim(600, 4, 0.6, 11);
    let g = CsrGraph::from_edges(&edges);
    let exact_tri = gps_graph::exact::triangle_count(&g) as f64;
    let exact_wedge = gps_graph::exact::wedge_count(&g) as f64;
    assert!(exact_tri > 0.0 && exact_wedge > 0.0);

    // Permute: seeded, reproducible.
    let stream = permuted(&edges, 17);
    assert_eq!(stream.len(), edges.len());
    assert_eq!(stream, permuted(&edges, 17));

    // Sample: Algorithm 1 under eviction pressure.
    let capacity = edges.len() / 4;
    let mut sampler = GpsSampler::new(capacity, TriangleWeight::default(), 5);
    for &e in &stream {
        let _: Arrival = sampler.process(e);
    }
    assert_eq!(sampler.len(), capacity);
    assert!(sampler.threshold() > 0.0, "eviction must raise z*");

    // Post-stream estimate (Algorithm 2): sane, in the right ballpark.
    let post: TriadEstimates = post_stream::estimate(&sampler);
    let rel = |est: &Estimate, truth: f64| (est.value - truth).abs() / truth;
    assert!(rel(&post.triangles, exact_tri) < 0.5);
    assert!(rel(&post.wedges, exact_wedge) < 0.5);
    assert!(post.triangles.variance >= 0.0);
    let (lb, ub) = post.triangles.ci95();
    assert!(lb <= post.triangles.value && post.triangles.value <= ub);

    // In-stream estimate (Algorithm 3) over the identical stream.
    let mut in_stream = InStreamEstimator::new(capacity, TriangleWeight::default(), 5);
    for &e in &stream {
        in_stream.process(e);
    }
    let ins = in_stream.estimates();
    assert!((ins.triangles.value - exact_tri).abs() / exact_tri < 0.5);
    assert!(ins.wedges.value > 0.0 && ins.tri_wedge_cov >= 0.0);
}

#[test]
fn every_prelude_export_is_usable() {
    let edges = gps_stream::gen::erdos_renyi(150, 500, 2);

    // gps_graph exports: Edge / NodeId / CsrGraph / IncrementalCounter.
    let (u, v): (NodeId, NodeId) = (0, 1);
    let e = Edge::new(u, v);
    assert_eq!((e.u(), e.v()), (0, 1));
    let mut inc = IncrementalCounter::new();
    for &e in &edges {
        inc.insert(e);
    }
    let g = CsrGraph::from_edges(&edges);
    assert_eq!(inc.triangles(), gps_graph::exact::triangle_count(&g));

    // gps_core exports: the remaining weight functions and persistence.
    let mut by_wedge = GpsSampler::new(64, WedgeWeight::default(), 1);
    let mut by_triad = GpsSampler::new(64, TriadWeight::default(), 1);
    let mut uniform = GpsSampler::new(64, UniformWeight, 1);
    for &e in &edges {
        by_wedge.process(e);
        by_triad.process(e);
        uniform.process(e);
    }
    let mut buf = Vec::new();
    persist::save(&uniform, &mut buf).unwrap();
    let restored = persist::load(buf.as_slice())
        .unwrap()
        .into_sampler(UniformWeight, 0);
    assert_eq!(restored.len(), uniform.len());

    // MotifCounter (generic snapshots) and LocalTriangleCounter.
    let mut four_cliques: MotifCounter<_, _> = gps_core::snapshot::four_clique_counter(10_000, 3);
    let mut local = LocalTriangleCounter::new(64, TriangleWeight::default(), 9);
    for &e in &edges {
        four_cliques.process(e);
        local.process(e);
    }
    assert!(four_cliques.estimate() >= 0.0);
    assert!(local.global_count() >= 0.0);

    // gps_stream exports: Checkpoints scheduling.
    let cps = Checkpoints::linear(edges.len(), 4);
    let mut fired = 0;
    cps.drive(edges.iter().copied(), |_| {}, |_| fired += 1);
    assert_eq!(fired, cps.positions().len());

    // gps_baselines export: TRIEST driven through the shared trait.
    let mut triest = gps_baselines::TriestImpr::new(64, 7);
    for &e in &edges {
        TriangleEstimator::process(&mut triest, e);
    }
    assert!(triest.triangle_estimate() >= 0.0);
    assert!(triest.stored_edges() <= 64);
    assert!(!triest.name().is_empty());
}
