//! Cross-method integration: every estimator (GPS modes + all baselines)
//! runs over the same streams through the common trait, and their accuracy
//! ordering matches the paper's qualitative findings.

use gps_baselines::{Mascot, MascotC, NSamp, TriestBase, TriestImpr, UniformReservoir};
use graph_priority_sampling::prelude::*;

fn run_all(edges: &[Edge], m: usize, seed: u64) -> Vec<(String, f64)> {
    let p = (m as f64 / edges.len() as f64).min(1.0);
    let mut methods: Vec<Box<dyn TriangleEstimator>> = vec![
        Box::new(TriestBase::new(m, seed)),
        Box::new(TriestImpr::new(m, seed)),
        Box::new(Mascot::new(p, seed)),
        Box::new(MascotC::new(p, seed)),
        Box::new(UniformReservoir::new(m, seed)),
        Box::new(NSamp::new(256, seed)),
    ];
    let stream = permuted(edges, seed ^ 0xabcdef);
    for e in stream {
        for mth in methods.iter_mut() {
            mth.process(e);
        }
    }
    methods
        .into_iter()
        .map(|m| (m.name().to_string(), m.triangle_estimate()))
        .collect()
}

#[test]
fn all_baselines_produce_finite_nonnegative_estimates() {
    let edges = gps_stream::gen::holme_kim(800, 3, 0.5, 3);
    for seed in 0..3 {
        for (name, est) in run_all(&edges, edges.len() / 4, seed) {
            assert!(est.is_finite() && est >= 0.0, "{name} produced {est}");
        }
    }
}

#[test]
fn gps_beats_triest_base_in_mean_error() {
    // The paper's Table 2/3 headline: GPS estimation error is well below
    // TRIEST-BASE at the same stored-edge budget.
    let edges = gps_stream::gen::holme_kim(1_200, 3, 0.6, 5);
    let g = CsrGraph::from_edges(&edges);
    let truth = gps_graph::exact::triangle_count(&g) as f64;
    let m = edges.len() / 6;
    let runs = 30;
    let (mut gps_sq, mut triest_sq) = (0.0, 0.0);
    for seed in 0..runs {
        let stream = permuted(&edges, 100 + seed);
        let mut gps = InStreamEstimator::new(m, TriangleWeight::default(), seed);
        let mut triest = TriestBase::new(m, seed);
        for &e in &stream {
            gps.process(e);
            triest.process(e);
        }
        let ge = (gps.triangle_count() - truth) / truth;
        let te = (triest.triangle_estimate() - truth) / truth;
        gps_sq += ge * ge;
        triest_sq += te * te;
    }
    assert!(
        gps_sq < triest_sq,
        "GPS in-stream MSE ({gps_sq:.4}) should beat TRIEST-BASE ({triest_sq:.4})"
    );
}

#[test]
fn method_estimates_agree_on_fully_retained_streams() {
    // When every method can hold the entire stream, all of them are exact
    // (MASCOT needs p=1, NSAMP needs the wedge to be found — excluded).
    let edges = gps_stream::gen::holme_kim(200, 2, 0.6, 9);
    let g = CsrGraph::from_edges(&edges);
    let truth = gps_graph::exact::triangle_count(&g) as f64;
    let big = edges.len() + 10;

    let mut methods: Vec<Box<dyn TriangleEstimator>> = vec![
        Box::new(TriestBase::new(big, 1)),
        Box::new(TriestImpr::new(big, 1)),
        Box::new(Mascot::new(1.0, 1)),
        Box::new(MascotC::new(1.0, 1)),
        Box::new(UniformReservoir::new(big, 1)),
    ];
    for e in permuted(&edges, 2) {
        for mth in methods.iter_mut() {
            mth.process(e);
        }
    }
    for mth in &methods {
        assert!(
            (mth.triangle_estimate() - truth).abs() < 1e-9,
            "{} != exact {truth}",
            mth.name()
        );
    }
}
