//! # graph-priority-sampling
//!
//! A production-oriented Rust implementation of **Graph Priority Sampling
//! (GPS)** from *"On Sampling from Massive Graph Streams"* (Ahmed, Duffield,
//! Willke, Rossi — VLDB 2017 / arXiv:1703.02625), together with every
//! substrate its evaluation depends on: graph storage and exact counting,
//! stream generators, the baseline estimators it is compared against, and a
//! harness regenerating each table and figure of the paper.
//!
//! ## What GPS does
//!
//! GPS maintains a **fixed-size, weight-sensitive sample of edges** over a
//! one-pass edge stream. Sampling weights may depend on the sampled
//! topology each edge encounters (e.g. how many sampled triangles it
//! closes), which lets one sample serve many estimation goals; unbiased
//! Horvitz–Thompson estimators — with unbiased variance estimates — are
//! available for arbitrary subgraph counts, either *post-stream* (from the
//! reservoir, at any time) or *in-stream* (snapshots taken as subgraphs are
//! completed; lower variance).
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | `GpsSampler` (Alg 1), weight functions, post-stream (Alg 2) & in-stream (Alg 3) estimation, generic motif snapshots, subset sums |
//! | [`graph`] | node/edge types, adjacency & CSR storage, exact triangle/wedge counting, incremental counters, edge-list I/O |
//! | [`stream`] | seeded permutations, checkpoint scheduling, synthetic workload generators, the evaluation corpus |
//! | [`baselines`] | TRIEST / TRIEST-IMPR, MASCOT(-C), NSAMP(+bulk), JHA wedge sampling, uniform reservoir — store-based ones on the shared adjacency-backend substrate |
//! | [`engine`] | `ShardedGps`: hash-partitioned multi-threaded ingest over `S` independent reservoirs, unbiased cross-shard estimate merging (honest `S > 1` CIs), in-stream estimation inside the workers, composed snapshots |
//! | [`serve`] | `ServeEngine`: live queries while ingest runs — epoch-published merged estimates, lock-free `QueryHandle::latest`, blocking watermark waits, bounded subscriptions |
//! | [`stats`] | running moments, ARE/MARE metrics, table rendering |
//!
//! `docs/paper-map.md` in the repository maps the paper's algorithms and
//! estimator equations to the concrete modules and functions above.
//!
//! ## Quick start
//!
//! ```
//! use graph_priority_sampling::prelude::*;
//!
//! // A small synthetic social-graph stream.
//! let edges = gps_stream::gen::holme_kim(2_000, 3, 0.5, 7);
//! let stream = gps_stream::permuted(&edges, 99);
//!
//! // Sample 1/6 of the stream with triangle-optimized weights and
//! // estimate in-stream.
//! let mut est = InStreamEstimator::new(edges.len() / 6, TriangleWeight::default(), 42);
//! for e in stream {
//!     est.process(e);
//! }
//! let triads = est.estimates();
//! let (lb, ub) = triads.triangles.ci95();
//! assert!(lb <= triads.triangles.value && triads.triangles.value <= ub);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gps_baselines as baselines;
pub use gps_core as core;
pub use gps_engine as engine;
pub use gps_graph as graph;
pub use gps_serve as serve;
pub use gps_stats as stats;
pub use gps_stream as stream;

/// One-line imports for the common workflow.
pub mod prelude {
    pub use gps_baselines::{self, TriangleEstimator};
    pub use gps_core::local::LocalTriangleCounter;
    pub use gps_core::{
        self, persist, post_stream, Arrival, Estimate, GpsSampler, InStreamEstimator, MotifCounter,
        TriadEstimates, TriadWeight, TriangleWeight, UniformWeight, WedgeWeight,
    };
    pub use gps_engine::{self, EngineConfig, ShardedGps};
    pub use gps_graph::{self, CsrGraph, Edge, IncrementalCounter, NodeId};
    pub use gps_serve::{
        self, ClockMode, EpochTrace, EstimateEpoch, QueryHandle, ServeConfig, ServeEngine,
        TraceCause,
    };
    pub use gps_stream::{self, batched, permuted, Checkpoints};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let edges = gps_stream::gen::erdos_renyi(100, 300, 1);
        let mut sampler = GpsSampler::new(64, UniformWeight, 2);
        for e in permuted(&edges, 3) {
            sampler.process(e);
        }
        assert_eq!(sampler.len(), 64);
        let est = post_stream::estimate(&sampler);
        assert!(est.wedges.value >= 0.0);
    }
}
