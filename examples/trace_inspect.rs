//! Where does an epoch's latency go? Stream a sharded workload, then read
//! the flight recorder back and print a per-stage attribution table.
//!
//! ```text
//! cargo run --release --example trace_inspect [-- [--last N] [--quick]]
//! ```
//!
//! Every epoch a `ServeEngine` publishes leaves an [`EpochTrace`] in a
//! bounded flight recorder: the arrival batch it covers, each shard's
//! report mark, any gate wait, the merge, the seqlock publish, and — once
//! somebody reads it — the first observation. This example runs a
//! Holme–Kim stream through a 3-shard engine with one reader thread
//! spinning on `QueryHandle::latest()` (so observation latency is real),
//! then prints the last N epochs' timelines: one row per epoch, one
//! column per stage, nanoseconds each stage took, plus the cause code,
//! the contributing-shard mask, and the report skew. The final epoch's
//! full JSON rendering (what `/trace/<version>` serves) closes the
//! report.
//!
//! The table reads like `docs/observability.md`'s stage catalog: on a
//! healthy run every cause is `full`, `gate_wait` is ~0, and the batch
//! span dwarfs the in-publication stages. A degraded run (see
//! `gps-serve`'s chaos tests) would instead show `gate_expired` rows
//! whose traces name the missing shards.
//!
//! `--last N` sets the table depth (default 10); `--quick` shrinks the
//! stream for CI.

use graph_priority_sampling::prelude::*;

/// The six pipeline stages, in timeline order (catalog order).
const STAGES: [&str; 6] = [
    "arrival_batch",
    "shard_report",
    "gate_wait",
    "merge",
    "seqlock_publish",
    "first_observation",
];

fn fmt_ns(ns: Option<u64>) -> String {
    ns.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let last: usize = args
        .iter()
        .position(|a| a == "--last")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    // 1. Workload: clustered power-law stream, 3 shards, epochs every
    //    1024 per-shard arrivals (the engine default).
    let (n, m) = if quick {
        (6_000, 2_000)
    } else {
        (40_000, 12_000)
    };
    let edges = gps_stream::gen::holme_kim(n, 4, 0.5, 7);
    let stream = permuted(&edges, 99);
    let shards = 3;
    let total = stream.len() as u64;

    let mut serve = ServeEngine::new(m, TriangleWeight::default(), 42, shards);
    // One live reader: its reads elect the first observer of each epoch,
    // so the `first_observation` stage below measures real publish-to-
    // visible latency rather than staying unobserved.
    let reader = {
        let handle = serve.handle();
        std::thread::spawn(move || loop {
            if let Some(epoch) = handle.latest() {
                if epoch.edges_seen >= total {
                    return;
                }
            }
            std::thread::yield_now();
        })
    };
    for batch in batched(stream.iter().copied(), 1024) {
        serve.push_batch(&batch);
    }
    serve.finish();
    reader.join().expect("reader thread");

    // 2. Read the flight recorder back through the query handle.
    let handle = serve.handle();
    let traces: Vec<EpochTrace> = handle.recent_traces(last);
    println!(
        "stream: {} edges   shards = {shards}   traces retained: {}   evicted: {}\n",
        stream.len(),
        traces.len(),
        handle.traces_lost(),
    );

    // 3. The attribution table: one row per epoch, one column per stage.
    print!(
        "{:<7} {:<12} {:>5} {:>10}",
        "epoch", "cause", "mask", "skew_ns"
    );
    for stage in STAGES {
        print!(" {stage:>17}");
    }
    println!();
    for t in &traces {
        print!(
            "{:<7} {:<12} {:>5} {:>10}",
            t.version,
            t.cause.as_str(),
            format!("{:b}", t.contributing),
            t.report_skew_ns,
        );
        for stage in STAGES {
            print!(" {:>17}", fmt_ns(t.stage_ns(stage)));
        }
        println!();
    }

    // 4. The final epoch's trace as the scrape endpoint would serve it.
    let final_trace = traces.last().expect("at least one epoch published");
    assert_eq!(final_trace.cause, TraceCause::Full, "clean run ends full");
    assert!(!final_trace.degraded());
    println!("\nGET /trace/{} =>", final_trace.version);
    println!("{}", final_trace.to_json());
}
