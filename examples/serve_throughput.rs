//! Live serving under reader load: hammer one engine with N query threads
//! while it ingests, and watch what it costs.
//!
//! ```text
//! cargo run --release --example serve_throughput [-- [--readers N] [--quick]]
//! ```
//!
//! Streams a Holme–Kim graph through a `gps-serve` `ServeEngine` (4 shards,
//! in-stream estimation in every worker, epochs published every 2048
//! per-shard arrivals) while reader threads spin on
//! `QueryHandle::latest()`. For each reader count the run prints ingest
//! throughput, total successful reads, the watermark staleness the readers
//! actually observed, and the final epoch's triangle estimate with its
//! honest 95% interval next to the exact count. The last run's full
//! telemetry exposition (see docs/observability.md) closes the report —
//! the same counters an operator of a live engine would scrape.
//!
//! Two points to take away: the read path is a lock-free seqlock cell, so
//! adding readers costs ingest (almost) nothing beyond the cores they
//! occupy — there is no lock a stampede could take from the workers. And
//! the epoch watermark itself is a perfectly good shutdown signal: readers
//! simply spin until they observe the final epoch (`edges_seen` = the full
//! stream), so the example needs no stop flag and no atomics of its own.
//!
//! `--readers N` runs a single reader count instead of the 0/1/4 sweep
//! (CI smoke runs `--readers 2 --quick`); `--quick` shrinks the stream.

use graph_priority_sampling::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let single_readers: Option<usize> = args
        .iter()
        .position(|a| a == "--readers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    // 1. Workload: clustered power-law stream, triangle-weighted sampling.
    let (n, m) = if quick {
        (6_000, 2_000)
    } else {
        (60_000, 16_000)
    };
    let edges = gps_stream::gen::holme_kim(n, 4, 0.5, 7);
    let stream = permuted(&edges, 99);
    let shards = 4;
    println!(
        "stream: {} edges   total budget m = {m}   shards = {shards}\n",
        stream.len()
    );

    // 2. Exact truth, for the final-epoch accuracy column.
    let g = CsrGraph::from_edges(&edges);
    let exact_triangles = gps_graph::exact::triangle_count(&g) as f64;

    // 3. Reader sweep.
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>22}",
        "readers", "ns/edge", "Medges/s", "reads", "lag(max)", "triangles [95% CI]"
    );
    let sweep: Vec<usize> = single_readers.map_or_else(|| vec![0, 1, 4], |r| vec![r]);
    let mut final_telemetry = None;
    for readers in sweep {
        let mut serve = ServeEngine::new(m, TriangleWeight::default(), 42, shards);
        let total = stream.len() as u64;
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let handle = serve.handle();
                std::thread::spawn(move || {
                    // Spin until the final epoch's watermark covers the
                    // whole stream — the published data is the shutdown
                    // signal, no side-channel flag needed.
                    let mut reads = 0u64;
                    loop {
                        if let Some(epoch) = handle.latest() {
                            reads += 1;
                            if epoch.edges_seen >= total {
                                return reads;
                            }
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();

        let probe = serve.handle();
        let mut max_lag = 0u64;
        let start = Instant::now();
        for (i, batch) in batched(stream.iter().copied(), 1024).enumerate() {
            serve.push_batch(&batch);
            if i % 16 == 0 {
                let watermark = probe.latest().map_or(0, |e| e.edges_seen);
                max_lag = max_lag.max(serve.pushed().saturating_sub(watermark));
            }
        }
        serve.finish();
        let elapsed = start.elapsed();
        // finish() published the full-stream epoch, so every reader exits.
        let reads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

        let epoch = probe.latest().expect("final epoch");
        let (lb, ub) = epoch.estimates.triangles.ci95();
        println!(
            "{readers:<8} {:>12.1} {:>12.3} {reads:>12} {max_lag:>10} {:>10.0} [{lb:.0}, {ub:.0}]",
            elapsed.as_nanos() as f64 / stream.len() as f64,
            stream.len() as f64 / elapsed.as_secs_f64() / 1e6,
            epoch.estimates.triangles.value,
        );
        assert_eq!(epoch.edges_seen, serve.pushed());
        final_telemetry = Some(serve.telemetry());
    }
    println!("\nexact triangles: {exact_triangles}");
    println!(
        "(epoch CIs include the between-shard coloring variance — honest \
         for S > 1; see gps-serve's statistical suite)"
    );
    if let Some(snapshot) = final_telemetry {
        println!("\nfinal telemetry exposition (last run):");
        print!("{}", snapshot.to_text());
    }
}
