//! Real-time tracking of an evolving graph — the paper's Figure 3 scenario.
//!
//! ```text
//! cargo run --release --example realtime_tracking
//! ```
//!
//! While the stream evolves, the in-stream estimator maintains triangle
//! count and clustering-coefficient estimates that can be read at ANY
//! moment, with confidence bounds. This prints a live table comparing the
//! estimates to the exact evolving values (which we can afford to compute
//! here because the example graph is small).

use graph_priority_sampling::prelude::*;

fn main() {
    let edges = gps_stream::gen::holme_kim(30_000, 3, 0.4, 3);
    let stream = permuted(&edges, 11);
    let m = edges.len() / 12;
    println!("stream: {} edges, reservoir m = {m}\n", edges.len());

    let mut est = InStreamEstimator::new(m, TriangleWeight::default(), 1);
    let mut exact = IncrementalCounter::new();

    println!(
        "{:>9} {:>11} {:>11} {:>7} {:>24} {:>9} {:>9}",
        "t", "tri-actual", "tri-est", "ARE", "95% CI", "cc-act", "cc-est"
    );
    let checkpoints = Checkpoints::linear(stream.len(), 12);
    let mut next = 0usize;
    for (i, e) in stream.into_iter().enumerate() {
        exact.insert(e);
        est.process(e);
        let t = i + 1;
        if next < checkpoints.positions().len() && checkpoints.positions()[next] == t {
            next += 1;
            let triads = est.estimates();
            let actual = exact.triangles() as f64;
            let (lb, ub) = triads.triangles.ci95();
            println!(
                "{t:>9} {actual:>11.0} {:>11.0} {:>7.4} {:>11.0} {:>12.0} {:>9.4} {:>9.4}",
                triads.triangles.value,
                triads.triangles.are(actual),
                lb,
                ub,
                exact.clustering(),
                triads.clustering.value,
            );
        }
    }
    println!(
        "\nsample held {} of {} streamed edges",
        est.sampler().len(),
        est.sampler().arrivals()
    );
}
