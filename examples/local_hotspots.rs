//! Local (per-node) triangle counting: find the clustering hotspots of a
//! stream without storing the graph.
//!
//! ```text
//! cargo run --release --example local_hotspots
//! ```
//!
//! Uses the snapshot extension `gps_core::local::LocalTriangleCounter` to
//! maintain unbiased per-node triangle counts (the problem MASCOT solves,
//! here with GPS machinery), then compares the estimated top-10 hotspot
//! nodes against the exact top-10.

use gps_graph::FxHashMap;
use graph_priority_sampling::prelude::*;

fn main() {
    // Collaboration graph: hub actors participate in many overlapping
    // cliques and dominate local triangle counts.
    let edges = gps_stream::gen::collaboration(12_000, 7_000, (3, 7), 0.5, 3);
    println!("graph: {} edges", edges.len());

    // Exact per-node counts (for validation only).
    let g = CsrGraph::from_edges(&edges);
    let mut exact: FxHashMap<NodeId, u64> = FxHashMap::default();
    gps_graph::exact::for_each_triangle(&g, |a, b, c| {
        for v in [a, b, c] {
            *exact.entry(v).or_insert(0) += 1;
        }
    });
    let mut exact_top: Vec<(NodeId, u64)> = exact.iter().map(|(&n, &c)| (n, c)).collect();
    exact_top.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));

    // Streaming estimate from a 15% sample.
    let m = edges.len() * 3 / 20;
    let mut counter = LocalTriangleCounter::new(m, TriangleWeight::default(), 11);
    for e in permuted(&edges, 5) {
        counter.process(e);
    }

    println!(
        "sampled {} of {} edges; tracking {} nodes\n",
        counter.sampler().len(),
        edges.len(),
        counter.nodes_tracked()
    );
    println!("{:>6} {:>12} {:>12}", "node", "exact", "estimate");
    for &(node, actual) in exact_top.iter().take(10) {
        println!("{node:>6} {actual:>12} {:>12.1}", counter.local_count(node));
    }

    // Hotspot recall: per-node estimates are noisy at 15% sampling (the
    // exact top nodes are near-ties), so measure whether the estimated
    // top-10 lands inside the exact top-30.
    let exact_top30: Vec<NodeId> = exact_top.iter().take(30).map(|&(n, _)| n).collect();
    let est_top: Vec<NodeId> = counter.top_k(10).into_iter().map(|(n, _)| n).collect();
    let hits = est_top.iter().filter(|n| exact_top30.contains(n)).count();
    println!("\nestimated top-10 hotspots: {hits}/10 fall inside the exact top-30");
    println!(
        "global triangle estimate {:.0} (exact {})",
        counter.global_count(),
        gps_graph::exact::triangle_count(&g)
    );
}
