//! Stream a real edge-list file through GPS — the drop-in path for the
//! paper's datasets (networkrepository.com / SNAP format).
//!
//! ```text
//! cargo run --release --example file_stream [PATH] [SAMPLE_SIZE]
//! ```
//!
//! With no arguments, writes a synthetic edge list to a temp file first so
//! the example is self-contained. With a path, expects white-space separated
//! `u v` lines (`#`/`%` comments fine; extra columns ignored; self-loops and
//! duplicates dropped — the paper's preprocessing).

use graph_priority_sampling::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (path, cleanup) = match args.get(1) {
        Some(p) => (std::path::PathBuf::from(p), false),
        None => {
            let p = std::env::temp_dir().join("gps-demo-edges.txt");
            let edges = gps_stream::gen::holme_kim(40_000, 3, 0.45, 3);
            gps_graph::io::write_edge_list_file(&p, &edges).expect("write demo edge list");
            println!("(no input given; wrote demo graph to {})\n", p.display());
            (p, true)
        }
    };
    let m: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10_000);

    // Load + simplify (relabels sparse ids onto dense u32s).
    let t0 = Instant::now();
    let edges = gps_graph::io::read_edge_list_file(&path, gps_graph::io::ReadOptions::default())
        .expect("read edge list");
    println!("loaded {} edges in {:.2?}", edges.len(), t0.elapsed());

    // One GPS pass over a random permutation.
    let t0 = Instant::now();
    let mut est = InStreamEstimator::new(m, TriangleWeight::default(), 42);
    for e in permuted(&edges, 7) {
        est.process(e);
    }
    let elapsed = t0.elapsed();
    let triads = est.estimates();
    let (lb, ub) = triads.triangles.ci95();
    println!(
        "sampled {} of {} edges in {:.2?} ({:.2} us/edge)",
        est.sampler().len(),
        edges.len(),
        elapsed,
        elapsed.as_secs_f64() * 1e6 / edges.len() as f64
    );
    println!(
        "triangles ≈ {:.0}   95% CI [{lb:.0}, {ub:.0}]",
        triads.triangles.value
    );
    println!("wedges    ≈ {:.0}", triads.wedges.value);
    println!("clustering ≈ {:.4}", triads.clustering.value);

    // If the graph is small enough, print the exact values for comparison.
    if edges.len() <= 2_000_000 {
        let g = CsrGraph::from_edges(&edges);
        println!(
            "exact:      {} triangles, {} wedges, clustering {:.4}",
            gps_graph::exact::triangle_count(&g),
            gps_graph::exact::wedge_count(&g),
            gps_graph::exact::global_clustering(&g)
        );
    }
    if cleanup {
        std::fs::remove_file(&path).ok();
    }
}
