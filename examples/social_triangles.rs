//! Social-network triangle counting: post-stream vs in-stream estimation on
//! the *same* sample — the paper's Table 1 comparison in miniature.
//!
//! ```text
//! cargo run --release --example social_triangles
//! ```
//!
//! The paper's motivating scenario (§1): a social platform wants triangle
//! counts and the global clustering coefficient of its interaction graph —
//! continuously, from a stream, within a fixed memory budget. This example
//! runs both GPS estimation modes over several independent samples and
//! shows (a) both are unbiased, (b) in-stream has visibly tighter spread.

use graph_priority_sampling::prelude::*;

fn main() {
    // Stand-in for a social interaction graph (cf. corpus "orkut-sim").
    let spec = gps_stream::corpus::by_name("orkut-sim").expect("corpus workload");
    let edges = spec.build(0.25, 7).edges;
    let g = CsrGraph::from_edges(&edges);
    let exact_triangles = gps_graph::exact::triangle_count(&g) as f64;
    let exact_cc = gps_graph::exact::global_clustering(&g);
    let m = edges.len() / 10;
    println!(
        "workload {} ({} edges, {} exact triangles), reservoir m = {m}\n",
        spec.name,
        edges.len(),
        exact_triangles
    );

    println!(
        "{:<5} {:>14} {:>9} {:>14} {:>9}    (exact = {exact_triangles})",
        "run", "in-stream", "ARE", "post-stream", "ARE"
    );
    let runs = 10;
    let (mut in_sq, mut post_sq) = (0.0f64, 0.0f64);
    for run in 0..runs {
        let stream = permuted(&edges, 1000 + run);
        let mut est = InStreamEstimator::new(m, TriangleWeight::default(), run);
        for e in stream {
            est.process(e);
        }
        let in_tri = est.estimates().triangles;
        let post_tri = post_stream::estimate(est.sampler()).triangles;
        in_sq += ((in_tri.value - exact_triangles) / exact_triangles).powi(2);
        post_sq += ((post_tri.value - exact_triangles) / exact_triangles).powi(2);
        println!(
            "{run:<5} {:>14.1} {:>9.4} {:>14.1} {:>9.4}",
            in_tri.value,
            in_tri.are(exact_triangles),
            post_tri.value,
            post_tri.are(exact_triangles),
        );
    }
    println!(
        "\nRMS relative error over {runs} runs:  in-stream {:.4}   post-stream {:.4}",
        (in_sq / runs as f64).sqrt(),
        (post_sq / runs as f64).sqrt()
    );

    // The same sample answers the clustering-coefficient query too.
    let stream = permuted(&edges, 5_000);
    let mut est = InStreamEstimator::new(m, TriangleWeight::default(), 77);
    for e in stream {
        est.process(e);
    }
    let cc = est.estimates().clustering;
    let (lb, ub) = cc.ci95();
    println!(
        "\nglobal clustering: exact {exact_cc:.4}, estimate {:.4}, 95% CI [{lb:.4}, {ub:.4}]",
        cc.value
    );
}
