//! Custom sampling weights from auxiliary variables — the paper's property
//! S3: weights "may also express intrinsic properties ... such as user age,
//! gender, interests, or relationship types in social networks, and bytes
//! associated with communication links".
//!
//! ```text
//! cargo run --release --example custom_weights
//! ```
//!
//! We attach a synthetic byte count to every edge of a network-traffic
//! graph, sample with weights proportional to bytes, and estimate total
//! traffic of node subsets far more accurately than uniform sampling —
//! classic IPPS/priority-sampling behaviour, now inside the graph sampler.

use graph_priority_sampling::core::subset;
use graph_priority_sampling::core::weights::FnWeight;
use graph_priority_sampling::prelude::*;

/// Deterministic synthetic "bytes transferred" per edge: heavy-tailed, so a
/// few flows dominate the total (the regime where weighted sampling wins).
fn bytes_of(e: Edge) -> f64 {
    let h = e.key().wrapping_mul(0x9e3779b97f4a7c15);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform (0,1)
                                                    // Pareto-ish: 1 / (1-u)^1.5, capped.
    (1.0 / (1.0 - u).powf(1.5)).min(1e6)
}

fn main() {
    let edges = gps_stream::gen::chung_lu(30_000, 100_000, 2.6, 17);
    let total_bytes: f64 = edges.iter().map(|&e| bytes_of(e)).sum();
    let hub_pred = |e: Edge| e.u() < 100 || e.v() < 100; // "core routers"
    let hub_bytes: f64 = edges
        .iter()
        .filter(|&&e| hub_pred(e))
        .map(|&e| bytes_of(e))
        .sum();
    let m = edges.len() / 20;
    println!(
        "{} edges, total traffic {total_bytes:.0}, core-router traffic {hub_bytes:.0}",
        edges.len()
    );
    println!("reservoir m = {m} ({}% of stream)\n", 100 * m / edges.len());

    println!(
        "{:<18} {:>14} {:>9} {:>14} {:>9}",
        "weighting", "total-est", "ARE", "core-est", "ARE"
    );
    let runs = 5;
    for (name, byte_weighted) in [("uniform", false), ("byte-weighted", true)] {
        let (mut tot_are, mut hub_are) = (0.0, 0.0);
        for run in 0..runs {
            let stream = permuted(&edges, 400 + run);
            // Weight = bytes (plus floor) or 1: the only difference between
            // the two samplers.
            let make_weight = move |e: Edge, _: &gps_core::SampleView<'_>| {
                if byte_weighted {
                    bytes_of(e) + 1.0
                } else {
                    1.0
                }
            };
            let mut sampler = GpsSampler::new(m, FnWeight(make_weight), run);
            for e in stream {
                sampler.process(e);
            }
            let total_est = subset::edge_total(&sampler, bytes_of);
            let hub_est =
                subset::edge_total(&sampler, |e| if hub_pred(e) { bytes_of(e) } else { 0.0 });
            tot_are += total_est.are(total_bytes);
            hub_are += hub_est.are(hub_bytes);
        }
        println!(
            "{name:<18} {:>14} {:>9.4} {:>14} {:>9.4}",
            "",
            tot_are / runs as f64,
            "",
            hub_are / runs as f64
        );
    }

    println!(
        "\nByte-weighted sampling concentrates the reservoir on heavy flows, so\n\
         byte-total queries inherit the IPPS variance optimality (paper §2, §3.5)."
    );
}
