//! Quickstart: sample a graph stream and estimate triangle/wedge counts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic social graph, streams it in random order through a
//! GPS(m) reservoir holding ~8% of the edges, and prints in-stream estimates
//! with 95% confidence bounds next to the exact values.

use graph_priority_sampling::prelude::*;

fn main() {
    // 1. A workload: Holme–Kim graph (heavy-tailed degrees + triangles).
    let edges = gps_stream::gen::holme_kim(20_000, 3, 0.5, 7);
    println!("graph: {} edges", edges.len());

    // 2. Exact ground truth (feasible here; the whole point of GPS is that
    //    you do NOT need this at stream scale).
    let g = CsrGraph::from_edges(&edges);
    let exact_triangles = gps_graph::exact::triangle_count(&g) as f64;
    let exact_wedges = gps_graph::exact::wedge_count(&g) as f64;
    let exact_cc = gps_graph::exact::global_clustering(&g);

    // 3. One pass over a random-order stream with the paper's
    //    triangle-optimized weights W(k, K̂) = 9·|△̂(k)| + 1.
    let m = edges.len() / 12;
    let mut est = InStreamEstimator::new(m, TriangleWeight::default(), 42);
    for e in permuted(&edges, 99) {
        est.process(e);
    }

    // 4. Report.
    let triads = est.estimates();
    let row = |name: &str, est: Estimate, actual: f64| {
        let (lb, ub) = est.ci95();
        println!(
            "{name:<10} actual {actual:>12.2}   estimate {:>12.2}   ARE {:.4}   95% CI [{lb:.2}, {ub:.2}]",
            est.value,
            est.are(actual),
        );
    };
    println!(
        "reservoir: {m} edges ({:.1}% of stream)\n",
        100.0 * m as f64 / edges.len() as f64
    );
    row("triangles", triads.triangles, exact_triangles);
    row("wedges", triads.wedges, exact_wedges);
    row("clustering", triads.clustering, exact_cc);
}
