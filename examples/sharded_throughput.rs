//! Sharded ingest: scale `GPSUpdate` across worker threads without giving
//! up unbiased estimates.
//!
//! ```text
//! cargo run --release --example sharded_throughput
//! ```
//!
//! Streams a Holme–Kim graph through the `gps-engine` `ShardedGps` at
//! S ∈ {1, 2, 4, 8} shards with a fixed *total* reservoir budget, and
//! prints ingest throughput, the speedup over S = 1, and the merged
//! triangle estimate next to the exact count. Two effects stack:
//! per-shard reservoirs shrink as m/S (cheaper per-edge updates — smaller
//! heap, smaller sampled adjacency), and the S workers run in parallel on
//! multi-core hardware.

use graph_priority_sampling::prelude::*;
use std::time::Instant;

fn main() {
    // 1. Workload: clustered power-law stream, triangle-weighted sampling.
    let edges = gps_stream::gen::holme_kim(60_000, 4, 0.5, 7);
    let stream = permuted(&edges, 99);
    let m = 16_000;
    println!(
        "stream: {} edges   total reservoir budget m = {m}\n",
        stream.len()
    );

    // 2. Exact truth (feasible at this scale; the engine's estimates must
    //    stay unbiased for it at every shard count).
    let g = CsrGraph::from_edges(&edges);
    let exact_triangles = gps_graph::exact::triangle_count(&g) as f64;

    // 3. Shard sweep. Batches come from the gps-stream feed adapter — the
    //    same unit the engine ships over its worker channels.
    println!(
        "{:<8} {:>12} {:>12} {:>9}   {:>14} {:>8}",
        "shards", "ns/edge", "Medges/s", "speedup", "triangles", "ARE"
    );
    let mut s1_rate = None;
    for shards in [1usize, 2, 4, 8] {
        let mut engine = ShardedGps::new(m, TriangleWeight::default(), 42, shards);
        let start = Instant::now();
        for batch in batched(stream.iter().copied(), 1024) {
            engine.push_batch(&batch);
        }
        engine.finish();
        let elapsed = start.elapsed();
        let est = engine.estimate();

        let ns_per_edge = elapsed.as_nanos() as f64 / stream.len() as f64;
        let rate = stream.len() as f64 / elapsed.as_secs_f64();
        let s1 = *s1_rate.get_or_insert(rate);
        println!(
            "S = {shards:<4} {ns_per_edge:>12.1} {:>12.3} {:>8.2}x   {:>14.1} {:>8.4}",
            rate / 1e6,
            rate / s1,
            est.triangles.value,
            est.triangles.are(exact_triangles),
        );
    }
    println!("\nexact triangles: {exact_triangles}");
    println!(
        "(estimates at S > 1 carry coloring noise on top of sampling noise; \
         they are unbiased over both — see gps-engine's statistical suite)"
    );
}
