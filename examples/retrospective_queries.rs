//! Retrospective queries against a stored reference sample — the paper's
//! post-stream estimation use case (§1: "construct a reference sample of
//! edges to support retrospective graph queries").
//!
//! ```text
//! cargo run --release --example retrospective_queries
//! ```
//!
//! A single GPS pass produces a small weighted sample. Afterwards —
//! without the original stream — we answer several different queries from
//! that one sample: subgraph counts, attribute-restricted edge counts, and
//! indicator estimates for specific subgraphs.

use graph_priority_sampling::prelude::*;

fn main() {
    // Pretend this is yesterday's traffic log: a power-law interaction
    // graph. Nodes with id < 1000 are "premium" users.
    let edges = gps_stream::gen::chung_lu(40_000, 120_000, 2.5, 13);
    let m = 8_000;
    let mut sampler = GpsSampler::new(m, TriadWeight::default(), 21);
    for e in permuted(&edges, 5) {
        sampler.process(e);
    }
    println!(
        "reference sample: {} of {} edges (threshold z* = {:.3})\n",
        sampler.len(),
        edges.len(),
        sampler.threshold()
    );

    // Query 1: subgraph counts (post-stream, Algorithm 2) — with variance.
    let est = post_stream::estimate_with_threads(&sampler, 4);
    let g = CsrGraph::from_edges(&edges);
    let actual_tri = gps_graph::exact::triangle_count(&g) as f64;
    let actual_wedge = gps_graph::exact::wedge_count(&g) as f64;
    let (lb, ub) = est.triangles.ci95();
    println!(
        "triangles: actual {actual_tri:.0}, estimate {:.0} (ARE {:.4}), CI [{lb:.0}, {ub:.0}]",
        est.triangles.value,
        est.triangles.are(actual_tri),
    );
    let (lb, ub) = est.wedges.ci95();
    println!(
        "wedges:    actual {actual_wedge:.0}, estimate {:.0} (ARE {:.4}), CI [{lb:.0}, {ub:.0}]",
        est.wedges.value,
        est.wedges.are(actual_wedge),
    );

    // Query 2: attribute-restricted edge totals (classic priority-sampling
    // subset sums). How many edges touch a premium user?
    let premium = |e: Edge| e.u() < 1_000 || e.v() < 1_000;
    let actual_premium = edges.iter().filter(|&&e| premium(e)).count() as f64;
    let premium_est = gps_core::subset::edge_count(&sampler, premium);
    let (lb, ub) = premium_est.ci95();
    println!(
        "premium-touching edges: actual {actual_premium:.0}, estimate {:.0} (ARE {:.4}), CI [{lb:.0}, {ub:.0}]",
        premium_est.value,
        premium_est.are(actual_premium),
    );

    // Query 3: indicator estimates for concrete subgraphs (Theorem 2). Did
    // this specific triangle appear, and with what HT weight?
    let mut shown = 0;
    let view = sampler.view();
    for se in sampler.edges() {
        let (u, v) = se.edge.endpoints();
        let mut partner = None;
        view.for_each_common_sampled_neighbor(u, v, |w| {
            if partner.is_none() {
                partner = Some(w);
            }
        });
        if let Some(w) = partner {
            let tri = [se.edge, Edge::new(u, w), Edge::new(v, w)];
            println!(
                "sampled triangle {}-{}-{}: indicator estimate Ŝ = {:.2}",
                u,
                v,
                w,
                sampler.subgraph_estimate(&tri)
            );
            shown += 1;
            if shown >= 3 {
                break;
            }
        }
    }
    if shown == 0 {
        println!("(no fully-sampled triangle found in this sample)");
    }

    // Query 4: persistence — a reference sample outlives the process. Save,
    // reload, and verify the reloaded sample answers identically.
    let path = std::env::temp_dir().join("gps-reference.sample");
    gps_core::persist::save_file(&sampler, &path).expect("save sample");
    let restored = gps_core::persist::load_file(&path)
        .expect("load sample")
        .into_sampler(UniformWeight, 0);
    // Compare serial-vs-serial: the parallel estimate above may differ in
    // float summation order, but the restored sample itself is exact.
    let serial_before = post_stream::estimate(&sampler);
    let again = post_stream::estimate(&restored);
    let drift = (again.triangles.value - serial_before.triangles.value).abs()
        / (1.0 + serial_before.triangles.value);
    println!(
        "\nsaved + reloaded sample from {}: triangle estimate {:.0} (relative drift {:.1e})",
        path.display(),
        again.triangles.value,
        drift
    );
    std::fs::remove_file(&path).ok();
}
