//! End-to-end smoke of the scrape endpoint: boot a `ServeEngine`, bind
//! the loopback HTTP responder, and fetch all three paths with plain
//! `TcpStream` GETs — exactly what a Prometheus scraper or a curl-armed
//! operator would do.
//!
//! ```text
//! cargo run --release --example scrape_smoke
//! ```
//!
//! The run streams a small Holme–Kim graph through a 2-shard engine with
//! `ServeEngine::start_scrape("127.0.0.1:0")` active, then validates the
//! shapes documented in docs/observability.md:
//!
//! - `GET /metrics` — Prometheus text exposition (`# TYPE` headers, the
//!   engine and serve counters).
//! - `GET /health` — one-line JSON with the latest epoch's identity and
//!   the degraded-shard bitmask.
//! - `GET /trace/<version>` — the flight recorder's timeline for the
//!   final epoch, byte-identical to `QueryHandle::trace`'s rendering.
//! - Unknown paths and evicted versions answer 404 with a JSON error.
//!
//! Any shape violation panics (non-zero exit), so CI can run this
//! example as the scrape-endpoint gate.

use graph_priority_sampling::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Minimal HTTP/1.1 GET; returns (status line, body). The endpoint
/// answers `Connection: close`, so reading to EOF delimits the response.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("scrape endpoint accepts");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    let status = response.lines().next().unwrap_or("").to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn expect(cond: bool, what: &str, got: &str) {
    assert!(cond, "scrape smoke failed: {what}\n--- response ---\n{got}");
}

fn main() {
    // 1. A short run with the endpoint up from the first edge.
    let edges = gps_stream::gen::holme_kim(4_000, 4, 0.5, 7);
    let stream = permuted(&edges, 99);
    let mut serve = ServeEngine::new(1_500, TriangleWeight::default(), 42, 2);
    let addr = serve
        .start_scrape("127.0.0.1:0")
        .expect("binding 127.0.0.1:0 succeeds");
    println!("scrape endpoint: http://{addr}");
    serve.push_stream(stream.iter().copied());
    serve.finish();
    let epoch = serve.handle().latest().expect("final epoch");

    // 2. /metrics — Prometheus text exposition.
    let (status, body) = http_get(addr, "/metrics");
    expect(status == "HTTP/1.1 200 OK", "/metrics status", &status);
    for needle in [
        "# TYPE gps_engine_arrivals_total counter",
        "gps_serve_epochs_published_total",
    ] {
        expect(body.contains(needle), needle, &body);
    }
    println!(
        "GET /metrics         200, {} bytes of exposition",
        body.len()
    );

    // 3. /health — single-line JSON summary.
    let (status, body) = http_get(addr, "/health");
    expect(status == "HTTP/1.1 200 OK", "/health status", &status);
    expect(
        body.starts_with('{') && body.trim_end().ends_with('}'),
        "/health is a JSON object",
        &body,
    );
    for needle in [
        "\"closed\":true".to_owned(),
        format!("\"version\":{}", epoch.version),
        format!("\"edges_seen\":{}", epoch.edges_seen),
        "\"degraded\":false".to_owned(),
        "\"degraded_mask\":0".to_owned(),
    ] {
        expect(body.contains(&needle), &needle, &body);
    }
    println!("GET /health          200: {}", body.trim_end());

    // 4. /trace/<version> — the final epoch's flight-recorder timeline,
    //    byte-identical to the in-process query.
    let (status, body) = http_get(addr, &format!("/trace/{}", epoch.version));
    expect(status == "HTTP/1.1 200 OK", "/trace status", &status);
    let in_process = serve
        .handle()
        .trace(epoch.version)
        .expect("final epoch is retained")
        .to_json();
    expect(
        body == in_process,
        "/trace matches QueryHandle::trace",
        &body,
    );
    println!(
        "GET /trace/{:<8} 200, {} bytes of timeline",
        epoch.version,
        body.len()
    );

    // 5. The 404 shapes.
    let (status, body) = http_get(addr, "/trace/18446744073709551615");
    expect(
        status == "HTTP/1.1 404 Not Found",
        "evicted trace 404s",
        &status,
    );
    expect(
        body.contains("\"error\""),
        "404 body is a JSON error",
        &body,
    );
    let (status, _) = http_get(addr, "/nope");
    expect(
        status == "HTTP/1.1 404 Not Found",
        "unknown path 404s",
        &status,
    );
    println!("GET /trace/<gone>    404   GET /nope  404");

    // 6. Lifecycle: the endpoint dies with its engine.
    drop(serve);
    expect(
        TcpStream::connect(addr).is_err(),
        "endpoint refuses connections after engine drop",
        "connect succeeded",
    );
    println!("endpoint stopped with the engine — scrape smoke OK");
}
